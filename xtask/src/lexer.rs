//! A masking lexer for Rust source.
//!
//! The lint rules are textual, so before matching we blank out everything
//! that is not code: string/char literals, line comments, block comments
//! (nested), and raw strings. The masked text keeps the exact line/column
//! structure of the original so findings report real locations.
//!
//! On top of masking, the lexer tracks two structural facts the rules need:
//!
//! * **test regions** — line spans covered by `#[cfg(test)]` or `#[test]`
//!   items, so library-only rules can skip them;
//! * **brace depth** at each line start, used by the `# Panics` doc rule to
//!   find function body extents.

/// Result of scanning one source file.
pub struct MaskedFile {
    /// Original source split into lines (no trailing newline).
    pub raw_lines: Vec<String>,
    /// Source with comments and literals blanked to spaces, same line
    /// structure as `raw_lines`.
    pub masked_lines: Vec<String>,
    /// Inclusive 0-based line spans that belong to `#[cfg(test)]` /
    /// `#[test]` items.
    pub test_regions: Vec<(usize, usize)>,
}

impl MaskedFile {
    /// Whether a 0-based line index falls inside test-only code.
    pub fn in_test_region(&self, line: usize) -> bool {
        self.test_regions.iter().any(|&(lo, hi)| (lo..=hi).contains(&line))
    }
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Normal,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    CharLit,
}

/// Mask a source file and record test regions.
pub fn scan(src: &str) -> MaskedFile {
    let chars: Vec<char> = src.chars().collect();
    let mut masked = String::with_capacity(src.len());
    let mut state = State::Normal;
    let mut i = 0;

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match state {
            State::Normal => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    masked.push(' ');
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    masked.push(' ');
                }
                '"' => {
                    // Keep the delimiter so `"..."` masks to `"   "`; rules
                    // never match quotes, and columns stay aligned.
                    state = State::Str;
                    masked.push('"');
                }
                'r' if next == Some('"') || next == Some('#') => {
                    // Possible raw string: r"..." or r#"..."# (any # count).
                    let mut hashes = 0u32;
                    let mut j = i + 1;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        state = State::RawStr(hashes);
                        for _ in i..=j {
                            masked.push(' ');
                        }
                        i = j + 1;
                        continue;
                    }
                    masked.push(c);
                }
                '\'' => {
                    // Distinguish char literals from lifetimes: 'a followed
                    // by anything but a closing quote is a lifetime.
                    if next == Some('\\') || chars.get(i + 2) == Some(&'\'') {
                        state = State::CharLit;
                        masked.push('\'');
                    } else {
                        masked.push('\'');
                    }
                }
                _ => masked.push(c),
            },
            State::LineComment => {
                if c == '\n' {
                    state = State::Normal;
                    masked.push('\n');
                } else {
                    masked.push(' ');
                }
            }
            State::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    state = if depth == 1 { State::Normal } else { State::BlockComment(depth - 1) };
                    masked.push_str("  ");
                    i += 2;
                    continue;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    masked.push_str("  ");
                    i += 2;
                    continue;
                } else if c == '\n' {
                    masked.push('\n');
                } else {
                    masked.push(' ');
                }
            }
            State::Str => match c {
                '\\' => {
                    masked.push_str("  ");
                    i += 2;
                    continue;
                }
                '"' => {
                    state = State::Normal;
                    masked.push('"');
                }
                '\n' => masked.push('\n'),
                _ => masked.push(' '),
            },
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes as usize {
                        if chars.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        state = State::Normal;
                        for _ in 0..=hashes as usize {
                            masked.push(' ');
                        }
                        i += 1 + hashes as usize;
                        continue;
                    }
                }
                masked.push(if c == '\n' { '\n' } else { ' ' });
            }
            State::CharLit => match c {
                '\\' => {
                    masked.push_str("  ");
                    i += 2;
                    continue;
                }
                '\'' => {
                    state = State::Normal;
                    masked.push('\'');
                }
                _ => masked.push(' '),
            },
        }
        i += 1;
    }

    let raw_lines: Vec<String> = src.lines().map(str::to_string).collect();
    let masked_lines: Vec<String> = masked.lines().map(str::to_string).collect();
    let test_regions = find_test_regions(&masked_lines);
    MaskedFile { raw_lines, masked_lines, test_regions }
}

/// Locate `#[cfg(test)]` / `#[test]` item spans by brace matching on the
/// masked text. An attribute arms the detector; the next `{` opens the
/// region, and the matching `}` closes it. A `;` before any `{` disarms
/// (attribute on a braceless item such as `#[cfg(test)] use ...;`).
fn find_test_regions(masked_lines: &[String]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut depth: i64 = 0;
    let mut armed: Option<usize> = None; // line the attribute appeared on
    let mut open: Option<(usize, i64)> = None; // (start line, depth at open)

    for (lineno, line) in masked_lines.iter().enumerate() {
        if armed.is_none() && open.is_none() {
            let t = line.trim_start();
            if t.starts_with("#[cfg(test)]") || t.starts_with("#[test]") {
                armed = Some(lineno);
            }
        }
        for c in line.chars() {
            match c {
                '{' => {
                    if let Some(start) = armed.take() {
                        open = Some((start, depth));
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if let Some((start, open_depth)) = open {
                        if depth == open_depth {
                            regions.push((start, lineno));
                            open = None;
                        }
                    }
                }
                ';' => {
                    // Braceless item: the attribute did not introduce a body.
                    if armed.is_some() && open.is_none() {
                        armed = None;
                    }
                }
                _ => {}
            }
        }
    }
    // Unclosed region (malformed source): extend to end of file.
    if let Some((start, _)) = open {
        regions.push((start, masked_lines.len().saturating_sub(1)));
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_strings_and_comments() {
        let f = scan("let x = \"unwrap()\"; // .unwrap()\nlet y = 1;");
        assert!(!f.masked_lines[0].contains("unwrap"));
        assert_eq!(f.masked_lines[1], "let y = 1;");
    }

    #[test]
    fn masks_nested_block_comments() {
        let f = scan("a /* x /* y */ z */ b");
        assert!(!f.masked_lines[0].contains('x'));
        assert!(!f.masked_lines[0].contains('z'));
        assert!(f.masked_lines[0].starts_with('a'));
        assert!(f.masked_lines[0].ends_with('b'));
    }

    #[test]
    fn masks_raw_strings() {
        let f = scan("let p = r#\"panic!(\"x\")\"#;");
        assert!(!f.masked_lines[0].contains("panic"));
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        let f = scan("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(f.masked_lines[0].contains("str"));
    }

    #[test]
    fn char_literals_are_masked() {
        let f = scan("let c = 'x'; let esc = '\\n'; let q = a == b;");
        assert!(f.masked_lines[0].contains("=="));
        assert!(!f.masked_lines[0].contains('x'));
    }

    #[test]
    fn cfg_test_region_spans_module() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let f = scan(src);
        assert!(!f.in_test_region(0));
        assert!(f.in_test_region(1));
        assert!(f.in_test_region(3));
        assert!(!f.in_test_region(5));
    }

    #[test]
    fn braceless_cfg_test_item_disarms() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn lib() { body(); }\n";
        let f = scan(src);
        assert!(!f.in_test_region(2));
    }
}
