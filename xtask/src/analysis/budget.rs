//! Shared budget-file machinery for the panic, allocation, and taint
//! budgets.
//!
//! All three budgets pin a per-root count of sites in a checked-in file
//! (`xtask/panic.budget`, `xtask/alloc.budget`, `xtask/taint.budget`)
//! with identical semantics: growth over the budget is an error that can
//! never be allowlisted, slack is a warning nudging a `--write-budget`
//! re-baseline, and a missing/stale/malformed file is an error. The
//! passes differ only in what they count; everything about the file
//! lives here.

use crate::rules::{Finding, Severity, WitnessStep};
use std::collections::BTreeMap;

/// One budget file: which rule its findings carry and where it lives.
pub struct BudgetSpec {
    /// Finding rule name (`panic-budget` / `alloc-budget`); deliberately
    /// absent from `rules::ALL_RULES` so allowlist entries for it are
    /// rejected — budget growth cannot be baselined away.
    pub rule: &'static str,
    /// Repo-relative budget file path.
    pub path: &'static str,
    /// What the counts measure, for messages (`panic` / `allocation`).
    pub noun: &'static str,
}

/// The panic budget (PR 4 semantics, unchanged).
pub const PANIC_BUDGET: BudgetSpec =
    BudgetSpec { rule: "panic-budget", path: "xtask/panic.budget", noun: "panic" };

/// The hot-path allocation budget.
pub const ALLOC_BUDGET: BudgetSpec =
    BudgetSpec { rule: "alloc-budget", path: "xtask/alloc.budget", noun: "allocation" };

/// The taint budget: tainted sink sites per untrusted-input group.
pub const TAINT_BUDGET: BudgetSpec =
    BudgetSpec { rule: "taint-budget", path: "xtask/taint.budget", noun: "taint" };

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BudgetStatus {
    Ok,
    /// More reachable sites than budgeted — lint fails.
    Over,
    /// Fewer sites than budgeted — warning to tighten the baseline.
    Under,
    /// Root absent from the budget file — lint fails.
    Unlisted,
}

impl BudgetStatus {
    pub fn label(self) -> &'static str {
        match self {
            BudgetStatus::Ok => "ok",
            BudgetStatus::Over => "over",
            BudgetStatus::Under => "under",
            BudgetStatus::Unlisted => "unlisted",
        }
    }
}

/// Classify a root's reachable-site count against its budget entry.
pub fn status(allotted: Option<u64>, count: u64) -> BudgetStatus {
    match allotted {
        None => BudgetStatus::Unlisted,
        Some(b) if count > b => BudgetStatus::Over,
        Some(b) if count < b => BudgetStatus::Under,
        Some(_) => BudgetStatus::Ok,
    }
}

/// A finding attached to the budget file itself.
pub fn finding(
    spec: &BudgetSpec,
    message: String,
    severity: Severity,
    witness: Vec<WitnessStep>,
) -> Finding {
    Finding {
        rule: spec.rule,
        path: spec.path.to_string(),
        line: 1,
        key: String::new(),
        message,
        severity,
        witness,
    }
}

/// The Over/Under/Unlisted finding for one root (`None` for Ok). `witness`
/// should be the call chain of one offending site so the error is
/// actionable.
pub fn status_finding(
    spec: &BudgetSpec,
    root: &str,
    allotted: Option<u64>,
    count: u64,
    st: BudgetStatus,
    witness: Vec<WitnessStep>,
) -> Option<Finding> {
    match st {
        BudgetStatus::Ok => None,
        BudgetStatus::Over => {
            let b = allotted.expect("Over implies a budget entry");
            Some(finding(
                spec,
                format!(
                    "{} budget exceeded for root `{root}`: {count} reachable {} \
                     sites, budget {b} — remove the new site or re-baseline with \
                     `--write-budget` and justify in the PR",
                    spec.noun, spec.noun
                ),
                Severity::Error,
                witness,
            ))
        }
        BudgetStatus::Under => {
            let b = allotted.expect("Under implies a budget entry");
            Some(finding(
                spec,
                format!(
                    "{} budget slack for root `{root}`: {count} reachable {} sites, \
                     budget {b} — tighten with `--write-budget`",
                    spec.noun, spec.noun
                ),
                Severity::Warning,
                Vec::new(),
            ))
        }
        BudgetStatus::Unlisted => Some(finding(
            spec,
            format!(
                "root `{root}` has no entry in {} — run \
                 `cargo run -p uhscm-xtask -- lint --write-budget`",
                spec.path
            ),
            Severity::Error,
            Vec::new(),
        )),
    }
}

/// Budget entries for roots that matched no functions are stale.
pub fn stale_findings(
    spec: &BudgetSpec,
    budget: &Option<BTreeMap<String, u64>>,
    live_roots: &[&str],
) -> Vec<Finding> {
    let mut out = Vec::new();
    if let Some(b) = budget {
        for root in b.keys() {
            if !live_roots.contains(&root.as_str()) {
                out.push(finding(
                    spec,
                    format!(
                        "stale entry `{root}` in {} matches no root with \
                         functions — remove it or run `--write-budget`",
                        spec.path
                    ),
                    Severity::Error,
                    Vec::new(),
                ));
            }
        }
    }
    out
}

/// Parse a budget file: `#` comments and `root<TAB>count` lines.
pub fn parse(spec: &BudgetSpec, src: Option<&str>) -> (Option<BTreeMap<String, u64>>, Vec<String>) {
    let Some(src) = src else {
        return (
            None,
            vec![format!(
                "{} missing — generate it with \
                 `cargo run -p uhscm-xtask -- lint --write-budget`",
                spec.path
            )],
        );
    };
    let mut map = BTreeMap::new();
    let mut errors = Vec::new();
    for (idx, line) in src.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = line.split('\t');
        let (root, count) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
        if parts.next().is_some() || root.trim().is_empty() {
            errors.push(format!("{}:{}: expected `root<TAB>count`", spec.path, idx + 1));
            continue;
        }
        match count.trim().parse::<u64>() {
            Ok(n) => {
                if map.insert(root.trim().to_string(), n).is_some() {
                    errors.push(format!(
                        "{}:{}: duplicate root `{}`",
                        spec.path,
                        idx + 1,
                        root.trim()
                    ));
                }
            }
            Err(_) => errors.push(format!(
                "{}:{}: count `{}` is not a non-negative integer",
                spec.path,
                idx + 1,
                count.trim()
            )),
        }
    }
    (Some(map), errors)
}

/// Render a budget file from fresh per-root counts (for `--write-budget`).
pub fn render(spec: &BudgetSpec, counts: &[(&str, usize)]) -> String {
    let mut out = format!(
        "# uhscm {} budget — reachable {} sites per hot-path root.\n\
         # Format: root<TAB>count. Checked against every `xtask lint` run;\n\
         # growth fails the lint (fix the site or regenerate with\n\
         # `cargo run -p uhscm-xtask -- lint --write-budget` and justify in the PR).\n",
        spec.noun, spec.noun
    );
    for (root, count) in counts {
        out.push_str(&format!("{root}\t{count}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_classification() {
        assert_eq!(status(Some(3), 3), BudgetStatus::Ok);
        assert_eq!(status(Some(3), 4), BudgetStatus::Over);
        assert_eq!(status(Some(3), 2), BudgetStatus::Under);
        assert_eq!(status(None, 0), BudgetStatus::Unlisted);
    }

    #[test]
    fn over_is_error_under_is_warning() {
        let over =
            status_finding(&ALLOC_BUDGET, "r", Some(1), 2, BudgetStatus::Over, Vec::new()).unwrap();
        assert_eq!(over.severity, Severity::Error);
        assert_eq!(over.rule, "alloc-budget");
        assert!(over.message.contains("allocation budget exceeded"));
        let under = status_finding(&ALLOC_BUDGET, "r", Some(3), 2, BudgetStatus::Under, Vec::new())
            .unwrap();
        assert_eq!(under.severity, Severity::Warning);
        assert!(under.message.contains("slack"));
        assert!(
            status_finding(&ALLOC_BUDGET, "r", Some(2), 2, BudgetStatus::Ok, Vec::new()).is_none()
        );
    }

    #[test]
    fn parse_rejects_malformed_lines_and_duplicates() {
        let (map, errs) = parse(&PANIC_BUDGET, Some("# c\na\t1\nb\tx\na\t2\nc\t1\textra\n\t3\n"));
        let map = map.unwrap();
        assert_eq!(map.get("a"), Some(&2)); // last write wins, but flagged
        assert_eq!(errs.len(), 4, "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("duplicate")));
        assert!(errs.iter().any(|e| e.contains("not a non-negative integer")));
    }

    #[test]
    fn missing_file_is_reported_with_the_spec_path() {
        let (map, errs) = parse(&ALLOC_BUDGET, None);
        assert!(map.is_none());
        assert!(errs[0].contains("xtask/alloc.budget missing"));
    }

    #[test]
    fn render_roundtrips() {
        let text = render(&ALLOC_BUDGET, &[("uhscm_core::pipeline", 7), ("uhscm_linalg::par", 0)]);
        assert!(text.contains("uhscm allocation budget"));
        let (map, errs) = parse(&ALLOC_BUDGET, Some(&text));
        assert!(errs.is_empty());
        assert_eq!(map.unwrap().get("uhscm_core::pipeline"), Some(&7));
    }
}
