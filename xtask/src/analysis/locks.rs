//! Lock-order and blocking-under-lock passes (DESIGN.md §13).
//!
//! Both passes share one model of guard lifetimes built from the parser's
//! lock extraction:
//!
//! * a **let-bound** guard (`let g = m.lock()`) is live from its
//!   acquisition line to the end of the enclosing function, or to an
//!   explicit `drop(g)` — statement granularity, over-approximate by
//!   design;
//! * a **temporary** guard (`m.lock().field = x`) lives only on its own
//!   line;
//! * a **guard-returning function** (any `*Guard` in the signature, e.g.
//!   `batch::recover`, `obs::sink::lock`) has no local extents: its
//!   acquisitions escape and are mapped onto each call site, identified
//!   by the first lock-binding argument (`recover(&self.state)` acquires
//!   `state`) or, for argument-less wrappers, by the callee's own
//!   escaping set (`lock()` acquires `SINK`).
//!
//! While a guard is live, every call edge inside its extent is walked
//! (BFS, test functions excluded). A second acquisition reached this way
//! adds an acquired-while-held edge (same lock: **same-lock re-entry**,
//! an immediate error); a blocking operation reached this way is a
//! **lock-blocking** finding. Cycles in the acquired-while-held graph are
//! **lock-order** errors. `lock-order` findings are never allowlistable;
//! `lock-blocking` findings are (intentional `Condvar::wait` coalescing
//! needs a justified `xtask/lint.allow` entry).

use crate::callgraph::{Graph, SourceFile, Workspace};
use crate::parser::LockKind;
use crate::rules::{Finding, Severity, WitnessStep};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::time::Instant;

/// One lock acquisition attributed to a function: a direct
/// `.lock()`/`.read()`/`.write()` on a known binding, or a call to a
/// guard-returning function mapped back to the lock it acquires.
#[derive(Clone)]
struct Acq {
    /// Lock identity: `crate::binding` of the declaring file.
    lock: String,
    /// 0-based acquisition line (the call site for mapped acquisitions).
    line: usize,
    /// Let-bound guard name; `None` = a temporary dying in its statement.
    guard: Option<String>,
    /// Direct acquisition method; `None` for guard-returning call sites.
    kind: Option<LockKind>,
}

/// Per-node acquisition events. Empty for test fns and guard-returning
/// fns (whose acquisitions escape to their callers).
struct Model {
    acqs: Vec<Vec<Acq>>,
}

/// Output of both passes plus their wall-times for `BENCH_lint.json`.
pub struct LockReport {
    pub lock_order: Vec<Finding>,
    pub blocking: Vec<Finding>,
    /// Includes the shared guard-lifetime model build.
    pub order_nanos: u128,
    pub blocking_nanos: u128,
}

fn lock_id(file: &SourceFile, binding: &str) -> String {
    format!("{}::{}", file.crate_name, binding)
}

/// Escaping lock sets for guard-returning fns: direct acquisitions plus,
/// by fixpoint, the escaping sets of guard-returning callees (wrappers of
/// wrappers).
fn escapes(ws: &Workspace, g: &Graph) -> BTreeMap<usize, BTreeSet<String>> {
    let mut esc: BTreeMap<usize, BTreeSet<String>> = BTreeMap::new();
    for n in 0..g.nodes.len() {
        let item = g.item(ws, n);
        if !item.ret_guard {
            continue;
        }
        let file = &ws.files[g.nodes[n].file];
        esc.insert(n, item.lock_sites.iter().map(|s| lock_id(file, &s.binding)).collect());
    }
    loop {
        let mut changed = false;
        let keys: Vec<usize> = esc.keys().copied().collect();
        for n in keys {
            let mut add = BTreeSet::new();
            for e in &g.edges[n] {
                if e.callee != n {
                    if let Some(callee_esc) = esc.get(&e.callee) {
                        add.extend(callee_esc.iter().cloned());
                    }
                }
            }
            let s = esc.get_mut(&n).expect("key from esc");
            let before = s.len();
            s.extend(add);
            changed |= s.len() > before;
        }
        if !changed {
            return esc;
        }
    }
}

fn model(ws: &Workspace, g: &Graph) -> Model {
    let esc = escapes(ws, g);
    let mut acqs = Vec::with_capacity(g.nodes.len());
    for n in 0..g.nodes.len() {
        let item = g.item(ws, n);
        if item.in_test || item.ret_guard {
            acqs.push(Vec::new());
            continue;
        }
        let file = &ws.files[g.nodes[n].file];
        let mut v: Vec<Acq> = item
            .lock_sites
            .iter()
            .map(|s| Acq {
                lock: lock_id(file, &s.binding),
                line: s.line,
                guard: s.guard.clone(),
                kind: Some(s.kind),
            })
            .collect();
        for e in &g.edges[n] {
            let Some(callee_esc) = esc.get(&e.callee) else { continue };
            if callee_esc.is_empty() {
                continue;
            }
            // Recover the parsed call for its argument/binding info; the
            // edge only knows the resolved target and the call line.
            let callee_name = g.item(ws, e.callee).name.as_str();
            let call = item.calls.iter().chain(item.method_calls.iter()).find(|c| {
                c.line == e.line && c.segments.last().map(String::as_str) == Some(callee_name)
            });
            let (guard, arg_lock) = match call {
                Some(c) => (
                    c.bound.clone(),
                    c.args
                        .iter()
                        .find(|a| file.parsed.lock_bindings.contains_key(a.as_str()))
                        .cloned(),
                ),
                None => (None, None),
            };
            match arg_lock {
                // `recover(&self.state)` — the caller-side binding names
                // the lock precisely.
                Some(b) => v.push(Acq { lock: lock_id(file, &b), line: e.line, guard, kind: None }),
                // `lock()` — fall back to everything the callee may
                // return a guard for.
                None => {
                    for l in callee_esc {
                        v.push(Acq {
                            lock: l.clone(),
                            line: e.line,
                            guard: guard.clone(),
                            kind: None,
                        });
                    }
                }
            }
        }
        acqs.push(v);
    }
    Model { acqs }
}

/// An acquired-while-held edge's representative witness.
struct EdgeWit {
    path: String,
    /// 1-based line of the second acquisition.
    line: usize,
    key: String,
    via: String,
    witness: Vec<WitnessStep>,
}

struct Sweep {
    order_edges: BTreeMap<(String, String), EdgeWit>,
    reentry: Vec<Finding>,
    blocking: Vec<Finding>,
}

fn trimmed_line(file: &SourceFile, line: usize) -> String {
    file.masked.raw_lines.get(line).map(|l| l.trim().to_string()).unwrap_or_default()
}

fn sweep(ws: &Workspace, g: &Graph, m: &Model) -> Sweep {
    let mut out = Sweep { order_edges: BTreeMap::new(), reentry: Vec::new(), blocking: Vec::new() };
    let mut seen_reentry: BTreeSet<(String, String, usize)> = BTreeSet::new();
    let mut seen_blocking: BTreeSet<(String, usize, String, String)> = BTreeSet::new();

    for owner in 0..g.nodes.len() {
        let item = g.item(ws, owner);
        if item.in_test || item.ret_guard || m.acqs[owner].is_empty() {
            continue;
        }
        let owner_file = &ws.files[g.nodes[owner].file];
        let owner_path = owner_file.path.clone();
        let owner_q = g.nodes[owner].qualified.clone();

        for acq in &m.acqs[owner] {
            // Guard extent: let-bound guards sweep to the fn end (or an
            // explicit `drop(g)`); temporaries cover their own line only.
            let (sweep_calls, lo, hi) = match &acq.guard {
                Some(gname) => {
                    let mut end = item.end_line;
                    for c in &item.calls {
                        if c.segments.last().map(String::as_str) == Some("drop")
                            && c.line > acq.line
                            && c.args.iter().any(|a| a == gname)
                        {
                            end = end.min(c.line);
                        }
                    }
                    (true, acq.line, end)
                }
                None => (false, acq.line, acq.line),
            };
            // Statement granularity: the acquiring line itself is in the
            // extent (one-liners like `let g = m.lock(); s.send();` are
            // common), but acquisition *events* only pair when strictly
            // later — two acquisitions in one statement have no
            // established order, and a mapped acquisition must not pair
            // with its own call site.
            let in_extent = |l: usize| if sweep_calls { l >= lo && l <= hi } else { l == lo };

            let step = |n: usize, line: usize| WitnessStep {
                qualified: g.nodes[n].qualified.clone(),
                path: g.path(ws, n).to_string(),
                line,
            };
            // Witness: owner at the acquisition, call chain, then the
            // function containing the offending site at that site's line.
            let chain = |parent: &BTreeMap<usize, Option<usize>>, node: usize, site_line: usize| {
                let mut steps = vec![step(owner, acq.line + 1)];
                if node == owner {
                    steps.push(step(owner, site_line + 1));
                } else {
                    let mut rev = vec![];
                    let mut cur = node;
                    while cur != owner {
                        rev.push(cur);
                        cur = parent.get(&cur).copied().flatten().expect("chain reaches owner");
                    }
                    rev.reverse();
                    for (k, &i) in rev.iter().enumerate() {
                        let line =
                            if k == rev.len() - 1 { site_line + 1 } else { g.item(ws, i).line + 1 };
                        steps.push(step(i, line));
                    }
                }
                steps
            };

            let emit_blocking =
                |site_node: usize,
                 op: &str,
                 condvar: bool,
                 site_line: usize,
                 parent: &BTreeMap<usize, Option<usize>>,
                 out: &mut Sweep,
                 seen: &mut BTreeSet<(String, usize, String, String)>| {
                    let site_file = &ws.files[g.nodes[site_node].file];
                    let dedup =
                        (site_file.path.clone(), site_line, op.to_string(), acq.lock.clone());
                    if !seen.insert(dedup) {
                        return;
                    }
                    let message = if condvar {
                        format!(
                            "`{op}` parks the thread while `{}` is held (acquired in `{owner_q}` \
                         at {owner_path}:{}); the wait releases the guard atomically — \
                         allowlist with a justification if the batching is intentional",
                            acq.lock,
                            acq.line + 1
                        )
                    } else {
                        format!(
                            "blocking `{op}` while `{}` is held (acquired in `{owner_q}` at \
                         {owner_path}:{}) — buffer under the lock and perform the \
                         operation outside the critical section",
                            acq.lock,
                            acq.line + 1
                        )
                    };
                    out.blocking.push(Finding {
                        rule: "lock-blocking",
                        path: site_file.path.clone(),
                        line: site_line + 1,
                        key: trimmed_line(site_file, site_line),
                        message,
                        severity: Severity::Error,
                        witness: chain(parent, site_node, site_line),
                    });
                };

            let emit_acq =
                |site_node: usize,
                 other: &Acq,
                 parent: &BTreeMap<usize, Option<usize>>,
                 out: &mut Sweep,
                 seen: &mut BTreeSet<(String, String, usize)>| {
                    let site_file = &ws.files[g.nodes[site_node].file];
                    if other.lock == acq.lock {
                        if !seen.insert((acq.lock.clone(), site_file.path.clone(), other.line)) {
                            return;
                        }
                        out.reentry.push(Finding {
                            rule: "lock-order",
                            path: site_file.path.clone(),
                            line: other.line + 1,
                            key: trimmed_line(site_file, other.line),
                            message: format!(
                                "same-lock re-entry: `{}` is already held (acquired in \
                             `{owner_q}` at {owner_path}:{}) when re-acquired{} — a std \
                             Mutex/RwLock self-deadlocks",
                                acq.lock,
                                acq.line + 1,
                                other
                                    .kind
                                    .map(|k| format!(" via `.{}()`", k.label()))
                                    .unwrap_or_default()
                            ),
                            severity: Severity::Error,
                            witness: chain(parent, site_node, other.line),
                        });
                    } else {
                        out.order_edges
                            .entry((acq.lock.clone(), other.lock.clone()))
                            .or_insert_with(|| EdgeWit {
                                path: site_file.path.clone(),
                                line: other.line + 1,
                                key: trimmed_line(site_file, other.line),
                                via: owner_q.clone(),
                                witness: chain(parent, site_node, other.line),
                            });
                    }
                };

            let empty_parent: BTreeMap<usize, Option<usize>> = BTreeMap::new();
            // Direct blocking sites of the owner inside the extent.
            for b in &item.blocking_sites {
                if in_extent(b.line) {
                    emit_blocking(
                        owner,
                        &b.op,
                        b.condvar_wait,
                        b.line,
                        &empty_parent,
                        &mut out,
                        &mut seen_blocking,
                    );
                }
            }
            if !sweep_calls {
                continue;
            }
            // Further acquisitions by the owner inside the extent.
            for other in &m.acqs[owner] {
                if other.line > acq.line && other.line <= hi {
                    emit_acq(owner, other, &empty_parent, &mut out, &mut seen_reentry);
                }
            }
            // Everything reachable through call edges inside the extent.
            let mut parent: BTreeMap<usize, Option<usize>> = BTreeMap::new();
            parent.insert(owner, None);
            let mut queue = VecDeque::new();
            for e in &g.edges[owner] {
                if in_extent(e.line)
                    && !g.item(ws, e.callee).in_test
                    && !parent.contains_key(&e.callee)
                {
                    parent.insert(e.callee, Some(owner));
                    queue.push_back(e.callee);
                }
            }
            while let Some(x) = queue.pop_front() {
                let xi = g.item(ws, x);
                for b in &xi.blocking_sites {
                    emit_blocking(
                        x,
                        &b.op,
                        b.condvar_wait,
                        b.line,
                        &parent,
                        &mut out,
                        &mut seen_blocking,
                    );
                }
                for other in m.acqs[x].clone() {
                    emit_acq(x, &other, &parent, &mut out, &mut seen_reentry);
                }
                for e in &g.edges[x] {
                    if !parent.contains_key(&e.callee) && !g.item(ws, e.callee).in_test {
                        parent.insert(e.callee, Some(x));
                        queue.push_back(e.callee);
                    }
                }
            }
        }
    }
    out
}

/// Whether `from` reaches `to` in the acquired-while-held graph.
fn reaches(adj: &BTreeMap<&String, Vec<&String>>, from: &String, to: &String) -> bool {
    let mut seen: BTreeSet<&String> = BTreeSet::new();
    let mut queue = VecDeque::from([from]);
    while let Some(x) = queue.pop_front() {
        if x == to {
            return true;
        }
        if !seen.insert(x) {
            continue;
        }
        for &next in adj.get(x).into_iter().flatten() {
            queue.push_back(next);
        }
    }
    false
}

/// Run both passes over the workspace call graph.
pub fn run(ws: &Workspace, g: &Graph) -> LockReport {
    let t0 = Instant::now();
    let m = model(ws, g);
    let sw = sweep(ws, g, &m);

    // Lock-order findings: same-lock re-entry plus every edge that sits
    // on a cycle of the acquired-while-held graph.
    let mut lock_order = sw.reentry;
    let mut adj: BTreeMap<&String, Vec<&String>> = BTreeMap::new();
    for (u, v) in sw.order_edges.keys() {
        adj.entry(u).or_default().push(v);
    }
    for ((u, v), w) in &sw.order_edges {
        if reaches(&adj, v, u) {
            lock_order.push(Finding {
                rule: "lock-order",
                path: w.path.clone(),
                line: w.line,
                key: w.key.clone(),
                message: format!(
                    "lock-order cycle: `{u}` is held while acquiring `{v}` (in `{}`), \
                     and `{v}` is transitively held while acquiring `{u}` — impose a \
                     single acquisition order",
                    w.via
                ),
                severity: Severity::Error,
                witness: w.witness.clone(),
            });
        }
    }
    lock_order.sort_by(|a, b| (&a.path, a.line, &a.message).cmp(&(&b.path, b.line, &b.message)));
    let order_nanos = t0.elapsed().as_nanos();

    let t1 = Instant::now();
    let mut blocking = sw.blocking;
    blocking.sort_by(|a, b| (&a.path, a.line, &a.message).cmp(&(&b.path, b.line, &b.message)));
    let blocking_nanos = t1.elapsed().as_nanos();

    LockReport { lock_order, blocking, order_nanos, blocking_nanos }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::{Graph, Workspace};

    fn report(files: &[(&str, &str)]) -> LockReport {
        let ws = Workspace::from_sources(files);
        let g = Graph::build(&ws);
        run(&ws, &g)
    }

    /// Satellite fixture: a lock-order inversion across two call chains
    /// (`one` holds `a` then takes `b`; `two` holds `b` then takes `a`)
    /// must trip the lock-order pass with witnesses.
    #[test]
    fn lock_order_inversion_fixture_trips() {
        let src = "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
                   impl S {\n\
                       fn one(&self) { let g = self.a.lock(); self.take_b(); }\n\
                       fn take_b(&self) { let h = self.b.lock(); use_it(h); }\n\
                       fn two(&self) { let h = self.b.lock(); self.take_a(); }\n\
                       fn take_a(&self) { let g = self.a.lock(); use_it(g); }\n\
                   }\n\
                   fn use_it<T>(_x: T) {}\n";
        let r = report(&[("crates/serve/src/lib.rs", src)]);
        assert!(
            r.lock_order.iter().any(|f| f.message.contains("lock-order cycle")
                && f.message.contains("uhscm_serve::a")
                && f.message.contains("uhscm_serve::b")),
            "{:?}",
            r.lock_order.iter().map(|f| &f.message).collect::<Vec<_>>()
        );
        for f in &r.lock_order {
            assert!(!f.witness.is_empty(), "cycle findings carry witnesses");
            assert_eq!(f.severity, Severity::Error);
        }
    }

    /// Satellite fixture: the PR-5 serve bug shape — a socket write under
    /// a held writer guard, through a call edge — must trip the
    /// blocking-under-lock pass.
    #[test]
    fn socket_write_under_guard_fixture_trips() {
        let src = "fn send(writer: &Arc<Mutex<TcpStream>>, body: &str) {\n\
                       let mut guard = writer.lock();\n\
                       write_frame(&mut guard, body);\n\
                   }\n\
                   fn write_frame(w: &mut TcpStream, body: &str) {\n\
                       w.write_all(body);\n\
                       w.flush();\n\
                   }\n";
        let r = report(&[("crates/serve/src/lib.rs", src)]);
        let hit = r
            .blocking
            .iter()
            .find(|f| f.message.contains("write_all"))
            .expect("socket write under guard must be flagged");
        assert!(hit.message.contains("uhscm_serve::writer"), "{}", hit.message);
        let chain: Vec<&str> = hit.witness.iter().map(|w| w.qualified.as_str()).collect();
        assert_eq!(chain, vec!["uhscm_serve::send", "uhscm_serve::write_frame"]);
        assert!(r.blocking.iter().any(|f| f.message.contains("flush")));
        assert!(r.lock_order.is_empty(), "no ordering issue in this fixture");
    }

    #[test]
    fn same_lock_reentry_through_a_helper_is_flagged() {
        let src = "struct S { m: Mutex<u32> }\n\
                   impl S {\n\
                       fn outer(&self) { let g = self.m.lock(); self.inner(); }\n\
                       fn inner(&self) { let h = self.m.lock(); use_it(h); }\n\
                   }\n\
                   fn use_it<T>(_x: T) {}\n";
        let r = report(&[("crates/serve/src/lib.rs", src)]);
        let f = r
            .lock_order
            .iter()
            .find(|f| f.message.contains("same-lock re-entry"))
            .expect("re-entry must be flagged");
        assert!(f.message.contains("uhscm_serve::m"));
    }

    #[test]
    fn guard_returning_wrapper_maps_to_call_sites() {
        // `recover` escapes its guard; the acquisition belongs to `submit`,
        // so the blocking write inside submit's extent is flagged, while
        // `recover` itself stays clean.
        let src = "struct Q { state: Mutex<u32>, out: TcpStream }\n\
                   fn recover(lock: &Mutex<u32>) -> MutexGuard<u32> { lock.lock() }\n\
                   impl Q {\n\
                       fn submit(&self) {\n\
                           let mut state = recover(&self.state);\n\
                           self.out.write(state);\n\
                       }\n\
                   }\n";
        let r = report(&[("crates/serve/src/lib.rs", src)]);
        let f = r.blocking.iter().find(|f| f.message.contains("blocking `write`"));
        let f = f.expect("write under mapped guard must be flagged");
        assert!(f.message.contains("uhscm_serve::state"), "{}", f.message);
        assert!(f.message.contains("`uhscm_serve::Q::submit`"), "{}", f.message);
    }

    #[test]
    fn condvar_wait_is_reported_as_intentional_parking() {
        let src = "struct Q { state: Mutex<u32>, ready: Condvar }\n\
                   impl Q {\n\
                       fn next(&self) {\n\
                           let mut state = self.state.lock();\n\
                           let _g = self.ready.wait(state);\n\
                       }\n\
                   }\n";
        let r = report(&[("crates/serve/src/lib.rs", src)]);
        let f = r
            .blocking
            .iter()
            .find(|f| f.message.contains("Condvar::wait"))
            .expect("condvar wait under guard is reportable");
        assert!(f.message.contains("releases the guard atomically"), "{}", f.message);
        assert!(r.lock_order.is_empty(), "a wait is never an ordering edge");
    }

    #[test]
    fn drop_ends_the_extent_and_temporaries_do_not_sweep() {
        let src = "struct S { m: Mutex<u32>, out: TcpStream }\n\
                   impl S {\n\
                       fn early_release(&self) {\n\
                           let g = self.m.lock();\n\
                           drop(g);\n\
                           self.out.write_all(b);\n\
                       }\n\
                       fn temp(&self) {\n\
                           self.m.lock();\n\
                           self.out.write_all(b);\n\
                       }\n\
                   }\n";
        let r = report(&[("crates/serve/src/lib.rs", src)]);
        assert!(
            r.blocking.is_empty(),
            "{:?}",
            r.blocking.iter().map(|f| &f.message).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ordered_nesting_without_cycle_is_clean() {
        let src = "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
                   impl S {\n\
                       fn one(&self) { let g = self.a.lock(); let h = self.b.lock(); use_it(h); }\n\
                       fn two(&self) { let g = self.a.lock(); let h = self.b.lock(); use_it(g); }\n\
                   }\n\
                   fn use_it<T>(_x: T) {}\n";
        let r = report(&[("crates/serve/src/lib.rs", src)]);
        assert!(
            r.lock_order.is_empty(),
            "{:?}",
            r.lock_order.iter().map(|f| &f.message).collect::<Vec<_>>()
        );
    }
}
