//! Interprocedural taint-flow analysis (DESIGN.md §16).
//!
//! **Sources** are the untrusted-input boundaries: the wire-protocol
//! decoders, the CLI argument parser, and the byte-level bundle/model
//! loaders (see [`GROUPS`]). **Propagation** is name-based and
//! conservative, the same over-approximation discipline as the lock
//! passes: a value returned from, or passed through, a function whose
//! argument is tainted stays tainted. Per-function state is a set of
//! tainted identifier names, grown to fixpoint over
//!
//! * call results (`let n = decode_request(..)` taints `n` when the
//!   callee is a source or returns taint, or when any argument/receiver
//!   is already tainted),
//! * dataflow binds extracted by the parser (`let`, `match`-arm,
//!   `for .. in`), and
//! * parameter summaries: a call with a tainted argument taints **all**
//!   parameters of every resolved in-scope callee (no positional
//!   mapping — the name-based graph cannot support one).
//!
//! `.min(..)`/`.clamp(..)` are **sanitizers**: clamping to a trusted cap
//! is exactly the remediation this pass asks for, so their results are
//! clean. Because the analysis is name-based, re-binding the *same* name
//! (`let n = n.min(cap)`) cannot un-taint it — sanitized values must use
//! a fresh name.
//!
//! **Sinks** are the parser's [`crate::parser::SinkSite`]s — indexing,
//! narrowing `as` casts, raw integer `+`/`*`/`-`, and allocation-size
//! positions. A sink whose operand names intersect the function's
//! tainted set and that sits inside the group's validation **boundary**
//! files (see [`SourceGroup::boundary`]) is a finding, pinned per source
//! group in `xtask/taint.budget` with the shared budget semantics
//! (growth is a non-allowlistable error, `--write-budget` re-baselines)
//! and witnessed by the origin chain source → … → sink function.

use super::budget;
use crate::callgraph::{Graph, Workspace};
use crate::parser::{Call, SinkKind};
use crate::rules::{Category, Finding, WitnessStep};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A group of taint sources sharing one budget entry.
pub struct SourceGroup {
    /// Budget root name (`wire` / `cli` / `bundle`).
    pub name: &'static str,
    /// Qualified source functions (`crate::module::[Type::]fn`). A group
    /// whose functions are all absent from the workspace is skipped, so
    /// fixtures and subsets stay analysable.
    pub sources: &'static [&'static str],
    /// Path prefixes of the group's validation boundary. Only sinks in
    /// these files count against the budget: the boundary is where
    /// untrusted values must be validated, and past it the conservative
    /// name-based join saturates by construction (a wire `top_k` feeds
    /// matmul dimensions feeds every kernel), so budgeting the full
    /// closure would pin the workspace's total sink count rather than
    /// the unvalidated surface. Propagation itself is *not* truncated —
    /// `tainted_fns` still reports the whole closure.
    pub boundary: &'static [&'static str],
}

/// The untrusted-input boundaries of the workspace.
pub const GROUPS: &[SourceGroup] = &[
    SourceGroup {
        name: "wire",
        sources: &[
            "uhscm_serve::protocol::decode_request",
            "uhscm_serve::protocol::decode_response",
        ],
        boundary: &["crates/serve/"],
    },
    SourceGroup {
        name: "cli",
        sources: &[
            "uhscm::cli::parse",
            "uhscm::cli::parse_invocation",
            "uhscm::cli::parse_num",
            "uhscm::cli::parse_bool",
        ],
        boundary: &["src/"],
    },
    SourceGroup {
        name: "bundle",
        sources: &[
            "uhscm_serve::bundle::Bundle::load_dir",
            "uhscm_nn::persist::Mlp::load",
            // The segment-store byte reader: every header/count field it
            // decodes is attacker-controlled until the checksum and range
            // checks in `segment.rs` have passed.
            "uhscm_store::segment::StoreReader::open",
            "uhscm_store::segment::StoreReader::new",
            "uhscm_store::segment::StoreReader::next_segment",
        ],
        boundary: &["crates/serve/src/bundle.rs", "crates/nn/src/persist.rs", "crates/store/"],
    },
];

/// Methods/functions whose result is considered clean (clamping to a
/// trusted bound) and through which taint does not propagate.
const SANITIZERS: &[&str] = &["min", "clamp"];

/// One tainted sink site reachable from a source group.
pub struct TaintSiteReport {
    pub kind: SinkKind,
    pub path: String,
    /// 1-based.
    pub line: usize,
    pub fn_qualified: String,
    /// The qualified source function the taint originates from.
    pub source: String,
    /// Origin chain source → … → sink function (declaration lines).
    pub witness: Vec<WitnessStep>,
}

/// Per-group taint summary for the report.
pub struct TaintRootReport {
    pub root: &'static str,
    pub budget: Option<u64>,
    /// Functions holding at least one tainted name.
    pub tainted_fns: usize,
    pub sites: Vec<TaintSiteReport>,
    pub status: budget::BudgetStatus,
}

/// Whether a node participates in propagation: library and CLI-facade
/// functions outside test regions. Test code handles fixture data, not
/// untrusted input.
fn in_scope(ws: &Workspace, g: &Graph, n: usize) -> bool {
    matches!(g.nodes[n].category, Category::Library | Category::RootFacade)
        && !g.item(ws, n).in_test
}

/// Run the pass. `budget_src` is the content of `xtask/taint.budget`
/// (`None` = file missing).
pub fn run(
    ws: &Workspace,
    g: &Graph,
    budget_src: Option<&str>,
) -> (Vec<Finding>, Vec<TaintRootReport>) {
    let spec = &budget::TAINT_BUDGET;
    let mut findings = Vec::new();
    let mut roots_out = Vec::new();
    let (bmap, budget_errors) = budget::parse(spec, budget_src);
    for e in budget_errors {
        findings.push(budget::finding(spec, e, crate::rules::Severity::Error, Vec::new()));
    }

    // Call resolution: the graph's edges carry (callee, line) but not
    // which textual call produced them, so calls are joined back to
    // edges by (line, callee fn name).
    let mut resolved: Vec<BTreeMap<(usize, &str), Vec<usize>>> = Vec::with_capacity(g.nodes.len());
    for edges in &g.edges {
        let mut m: BTreeMap<(usize, &str), Vec<usize>> = BTreeMap::new();
        for e in edges {
            m.entry((e.line, g.item(ws, e.callee).name.as_str())).or_default().push(e.callee);
        }
        resolved.push(m);
    }
    // Reverse edges, for re-processing callers when a callee's return
    // becomes tainted.
    let mut callers: Vec<Vec<usize>> = vec![Vec::new(); g.nodes.len()];
    for (n, edges) in g.edges.iter().enumerate() {
        for e in edges {
            callers[e.callee].push(n);
        }
    }

    let mut live_roots: Vec<&str> = Vec::new();
    for group in GROUPS {
        let source_nodes: BTreeSet<usize> = (0..g.nodes.len())
            .filter(|&n| {
                in_scope(ws, g, n)
                    && group.sources.iter().any(|s| {
                        let q = g.nodes[n].qualified.as_str();
                        q == *s || s.ends_with(&format!("::{q}")) || q.ends_with(&format!("::{s}"))
                    })
            })
            .collect();
        if source_nodes.is_empty() {
            continue;
        }
        live_roots.push(group.name);

        // Per-node tainted name sets, return-taint, and origin links
        // (source qualified name, parent hop) for witnesses.
        let mut tainted: BTreeMap<usize, BTreeSet<String>> = BTreeMap::new();
        let mut ret_tainted: BTreeSet<usize> = BTreeSet::new();
        let mut origin: BTreeMap<usize, (String, Option<usize>)> = BTreeMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut queued: BTreeSet<usize> = BTreeSet::new();

        for &s in &source_nodes {
            let item = g.item(ws, s);
            tainted.insert(s, item.params.iter().cloned().collect());
            ret_tainted.insert(s);
            origin.insert(s, (g.nodes[s].qualified.clone(), None));
            queue.push_back(s);
            queued.insert(s);
            for &c in &callers[s] {
                if in_scope(ws, g, c) && queued.insert(c) {
                    queue.push_back(c);
                }
            }
        }

        while let Some(n) = queue.pop_front() {
            queued.remove(&n);
            if !in_scope(ws, g, n) {
                continue;
            }
            let item = g.item(ws, n);
            let mut set = tainted.get(&n).cloned().unwrap_or_default();
            let src_of = |origin: &BTreeMap<usize, (String, Option<usize>)>, m: usize| {
                origin.get(&m).map(|(s, _)| s.clone())
            };

            // Local fixpoint over call results and binds.
            let mut saw_tainted_call = false;
            let mut changed = true;
            while changed {
                changed = false;
                for call in item.calls.iter().chain(item.method_calls.iter()) {
                    let Some(name) = call.segments.last() else { continue };
                    if SANITIZERS.contains(&name.as_str()) {
                        continue;
                    }
                    let from_args = call_args_tainted(call, &set);
                    let via_ret = resolved[n]
                        .get(&(call.line, name.as_str()))
                        .into_iter()
                        .flatten()
                        .find(|c| ret_tainted.contains(c))
                        .copied();
                    if from_args || via_ret.is_some() {
                        saw_tainted_call = true;
                        // Record the origin hop even when the result is
                        // not bound to a name: an unbound tainted call
                        // still makes this function's return tainted, and
                        // callers need a chain back to the source.
                        if !origin.contains_key(&n) {
                            if let Some(c) = via_ret {
                                if let Some(src) = src_of(&origin, c) {
                                    origin.insert(n, (src, Some(c)));
                                }
                            }
                        }
                        if let Some(bound) = &call.bound {
                            if !set.contains(bound) {
                                set.insert(bound.clone());
                                changed = true;
                            }
                        }
                    }
                }
                for b in &item.binds {
                    if b.rhs.iter().any(|r| SANITIZERS.contains(&r.as_str())) {
                        continue;
                    }
                    if b.bound.iter().all(|x| set.contains(x)) {
                        continue;
                    }
                    if b.rhs.iter().any(|r| set.contains(r)) {
                        for x in &b.bound {
                            set.insert(x.clone());
                        }
                        changed = true;
                    }
                }
            }

            // Parameter summaries: a tainted argument taints every
            // parameter of each resolved in-scope callee.
            for call in item.calls.iter().chain(item.method_calls.iter()) {
                let Some(name) = call.segments.last() else { continue };
                if SANITIZERS.contains(&name.as_str()) || !call_args_tainted(call, &set) {
                    continue;
                }
                let callees: Vec<usize> = resolved[n]
                    .get(&(call.line, name.as_str()))
                    .into_iter()
                    .flatten()
                    .copied()
                    .collect();
                for c in callees {
                    if !in_scope(ws, g, c) {
                        continue;
                    }
                    let cparams = &g.item(ws, c).params;
                    if cparams.is_empty() {
                        continue;
                    }
                    let cset = tainted.entry(c).or_default();
                    let mut grew = false;
                    for p in cparams {
                        if cset.insert(p.clone()) {
                            grew = true;
                        }
                    }
                    if grew {
                        if !origin.contains_key(&c) {
                            if let Some(src) = src_of(&origin, n) {
                                origin.insert(c, (src, Some(n)));
                            }
                        }
                        if queued.insert(c) {
                            queue.push_back(c);
                        }
                    }
                }
            }

            if !set.is_empty() {
                tainted.insert(n, set);
            }
            // Return-taint: any tainted name, or an unbound call whose
            // result is tainted (a wrapper returning a source's value
            // directly).
            let rets = tainted.get(&n).is_some_and(|s| !s.is_empty()) || saw_tainted_call;
            if rets && ret_tainted.insert(n) {
                for &caller in &callers[n] {
                    if in_scope(ws, g, caller) && queued.insert(caller) {
                        queue.push_back(caller);
                    }
                }
            }
        }

        // Collect tainted sink sites inside the group's boundary files.
        let mut sites: Vec<TaintSiteReport> = Vec::new();
        for (&n, set) in &tainted {
            if set.is_empty() || !in_scope(ws, g, n) {
                continue;
            }
            if !group.boundary.iter().any(|b| g.path(ws, n).starts_with(b)) {
                continue;
            }
            let item = g.item(ws, n);
            let Some((src, _)) = origin.get(&n) else { continue };
            for sink in &item.sinks {
                if sink.operands.iter().any(|o| set.contains(o)) {
                    sites.push(TaintSiteReport {
                        kind: sink.kind,
                        path: g.path(ws, n).to_string(),
                        line: sink.line + 1,
                        fn_qualified: g.nodes[n].qualified.clone(),
                        source: src.clone(),
                        witness: witness_chain(ws, g, &origin, n),
                    });
                }
            }
        }
        sites.sort_by(|a, b| {
            (&a.path, a.line, a.kind, &a.fn_qualified).cmp(&(
                &b.path,
                b.line,
                b.kind,
                &b.fn_qualified,
            ))
        });

        let allotted = bmap.as_ref().and_then(|b| b.get(group.name).copied());
        let count = sites.len() as u64;
        let status = budget::status(allotted, count);
        let witness = if status == budget::BudgetStatus::Over {
            sites.first().map(|s| s.witness.clone()).unwrap_or_default()
        } else {
            Vec::new()
        };
        if let Some(f) = budget::status_finding(spec, group.name, allotted, count, status, witness)
        {
            findings.push(f);
        }
        roots_out.push(TaintRootReport {
            root: group.name,
            budget: allotted,
            tainted_fns: tainted.values().filter(|s| !s.is_empty()).count(),
            sites,
            status,
        });
    }
    findings.extend(budget::stale_findings(spec, &bmap, &live_roots));
    (findings, roots_out)
}

/// Whether any argument or the receiver of a call is tainted.
fn call_args_tainted(call: &Call, set: &BTreeSet<String>) -> bool {
    call.args.iter().any(|a| set.contains(a)) || call.recv.as_ref().is_some_and(|r| set.contains(r))
}

/// Origin chain source → … → `n`, one step per function (declaration
/// lines, 1-based). Bounded against origin-map cycles, which the
/// first-origin-wins discipline should already prevent.
fn witness_chain(
    ws: &Workspace,
    g: &Graph,
    origin: &BTreeMap<usize, (String, Option<usize>)>,
    n: usize,
) -> Vec<WitnessStep> {
    let mut chain = vec![n];
    let mut cur = n;
    for _ in 0..64 {
        match origin.get(&cur) {
            Some((_, Some(parent))) if !chain.contains(parent) => {
                chain.push(*parent);
                cur = *parent;
            }
            _ => break,
        }
    }
    chain.reverse();
    chain
        .into_iter()
        .map(|m| WitnessStep {
            qualified: g.nodes[m].qualified.clone(),
            path: g.path(ws, m).to_string(),
            line: g.item(ws, m).line + 1,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::{Graph, Workspace};
    use crate::rules::Severity;

    fn analyse(files: &[(&str, &str)], budget: &str) -> (Vec<Finding>, Vec<TaintRootReport>) {
        let ws = Workspace::from_sources(files);
        let g = Graph::build(&ws);
        run(&ws, &g, Some(budget))
    }

    const DECODE: &str = "pub fn decode_request(line: &str) -> usize { line.len() }\n";

    #[test]
    fn taint_flows_through_calls_binds_and_params_to_sinks() {
        let files = [
            ("crates/serve/src/protocol.rs", DECODE),
            (
                "crates/serve/src/server.rs",
                "pub fn handle(line: &str) -> usize {\n\
                     let n = crate::protocol::decode_request(line);\n\
                     dispatch(n)\n\
                 }\n\
                 fn dispatch(n: usize) -> usize { n + 1 }\n",
            ),
        ];
        let (findings, roots) = analyse(&files, "wire\t1\n");
        assert!(
            findings.is_empty(),
            "{:?}",
            findings.iter().map(|f| &f.message).collect::<Vec<_>>()
        );
        let wire = roots.iter().find(|r| r.root == "wire").unwrap();
        assert_eq!(wire.status, budget::BudgetStatus::Ok);
        assert_eq!(wire.sites.len(), 1, "{}", wire.sites.len());
        let site = &wire.sites[0];
        assert_eq!(site.kind, SinkKind::Arith);
        assert!(site.fn_qualified.ends_with("::dispatch"));
        assert_eq!(site.source, "uhscm_serve::protocol::decode_request");
        // The witness walks source → handler → sink function.
        let names: Vec<&str> = site.witness.iter().map(|w| w.qualified.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "uhscm_serve::protocol::decode_request",
                "uhscm_serve::server::handle",
                "uhscm_serve::server::dispatch"
            ]
        );
    }

    #[test]
    fn laundering_helper_propagates_via_return() {
        // `launder` is called with a clean argument inside a wrapper that
        // feeds it the source's value only through its own return path.
        let files = [
            ("crates/serve/src/protocol.rs", DECODE),
            (
                "crates/serve/src/server.rs",
                "pub fn handle(line: &str, v: &[u8]) -> u8 {\n\
                     let m = fetch(line);\n\
                     v[m]\n\
                 }\n\
                 fn fetch(line: &str) -> usize { launder(crate::protocol::decode_request(line)) }\n\
                 fn launder(x: usize) -> usize { x }\n",
            ),
        ];
        let (findings, roots) = analyse(&files, "wire\t1\n");
        assert!(
            findings.is_empty(),
            "{:?}",
            findings.iter().map(|f| &f.message).collect::<Vec<_>>()
        );
        let wire = roots.iter().find(|r| r.root == "wire").unwrap();
        assert_eq!(wire.sites.len(), 1);
        assert_eq!(wire.sites[0].kind, SinkKind::Index);
        assert!(wire.sites[0].fn_qualified.ends_with("::handle"));
    }

    #[test]
    fn min_clamp_sanitizes_into_a_fresh_name() {
        let files = [
            ("crates/serve/src/protocol.rs", DECODE),
            (
                "crates/serve/src/server.rs",
                "pub fn handle(line: &str, v: &[u8]) -> u8 {\n\
                     let n = crate::protocol::decode_request(line);\n\
                     let capped = n.min(v.len());\n\
                     v[capped]\n\
                 }\n",
            ),
        ];
        let (findings, roots) = analyse(&files, "wire\t0\n");
        assert!(
            findings.is_empty(),
            "{:?}",
            findings.iter().map(|f| &f.message).collect::<Vec<_>>()
        );
        assert!(roots.iter().find(|r| r.root == "wire").unwrap().sites.is_empty());
    }

    #[test]
    fn tainted_index_and_capacity_trip_the_budget() {
        // Negative fixture: a hot-path index and a `with_capacity` both
        // fed by wire input, against a zero budget.
        let files = [
            ("crates/serve/src/protocol.rs", DECODE),
            (
                "crates/serve/src/server.rs",
                "pub fn handle(line: &str, v: &[u8]) -> u8 {\n\
                     let n = crate::protocol::decode_request(line);\n\
                     let buf: Vec<u8> = Vec::with_capacity(n);\n\
                     keep(buf);\n\
                     v[n]\n\
                 }\n\
                 fn keep(_b: Vec<u8>) {}\n",
            ),
        ];
        let (findings, roots) = analyse(&files, "wire\t0\n");
        let over = findings
            .iter()
            .find(|f| f.rule == "taint-budget" && f.message.contains("exceeded"))
            .expect("expected an over-budget error");
        assert_eq!(over.severity, Severity::Error);
        assert!(over.message.contains("`wire`"), "{}", over.message);
        assert!(!over.witness.is_empty(), "over finding carries a witness");
        let wire = roots.iter().find(|r| r.root == "wire").unwrap();
        assert_eq!(wire.status, budget::BudgetStatus::Over);
        let kinds: Vec<SinkKind> = wire.sites.iter().map(|s| s.kind).collect();
        assert!(kinds.contains(&SinkKind::AllocSize), "{kinds:?}");
        assert!(kinds.contains(&SinkKind::Index), "{kinds:?}");
        // Every site names both its source and a witness chain.
        assert!(wire.sites.iter().all(|s| !s.source.is_empty() && !s.witness.is_empty()));
    }

    #[test]
    fn groups_without_sources_are_skipped_and_stale_entries_error() {
        let files = [("crates/core/src/pipeline.rs", "pub fn run(n: usize) -> usize { n + 1 }\n")];
        let (findings, roots) = analyse(&files, "wire\t3\n");
        assert!(roots.is_empty());
        assert!(
            findings.iter().any(|f| f.rule == "taint-budget" && f.message.contains("stale")),
            "{:?}",
            findings.iter().map(|f| &f.message).collect::<Vec<_>>()
        );
    }

    #[test]
    fn test_region_code_is_out_of_scope() {
        let files = [
            ("crates/serve/src/protocol.rs", DECODE),
            (
                "crates/serve/src/server.rs",
                "#[cfg(test)]\nmod tests {\n\
                     fn poke(v: &[u8]) -> u8 {\n\
                         let n = crate::protocol::decode_request(\"x\");\n\
                         v[n]\n\
                     }\n\
                 }\n",
            ),
        ];
        let (_, roots) = analyse(&files, "wire\t0\n");
        let wire = roots.iter().find(|r| r.root == "wire").unwrap();
        assert!(wire.sites.is_empty(), "test-region sinks must not count");
    }
}
