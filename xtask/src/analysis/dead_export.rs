//! Dead-export detection: `pub` functions nobody outside the crate uses.
//!
//! A `pub fn` in a library crate with zero in-edges from outside its own
//! crate is surface area with no consumer: it should be demoted to
//! `pub(crate)`, removed, or allowlisted with a reason (e.g. "public API
//! of the reproduction, exercised via the CLI examples"). Tests, benches
//! and examples count as callers — a function only a test calls is still
//! alive. Findings are warnings: they never fail the lint, but they are
//! reported and counted.
//!
//! Trait-impl methods are exempt (they are reached through dispatch the
//! name-based graph cannot see), as are `main` and `#[cfg(test)]` items.

use crate::callgraph::{Graph, Workspace};
use crate::rules::{Category, Finding, Severity};
use std::collections::BTreeSet;

pub fn run(ws: &Workspace, g: &Graph) -> Vec<Finding> {
    // Nodes with at least one out-of-crate caller (tests count).
    let mut alive: BTreeSet<usize> = BTreeSet::new();
    for (caller, edges) in g.edges.iter().enumerate() {
        let caller_node = &g.nodes[caller];
        let caller_in_test = g.item(ws, caller).in_test;
        for e in edges {
            let callee_node = &g.nodes[e.callee];
            if caller_node.crate_name != callee_node.crate_name || caller_in_test {
                alive.insert(e.callee);
            }
        }
    }

    let mut findings = Vec::new();
    for (ni, node) in g.nodes.iter().enumerate() {
        if node.category != Category::Library {
            continue;
        }
        let item = g.item(ws, ni);
        if !item.is_pub || item.in_test || item.trait_impl || item.name == "main" {
            continue;
        }
        if alive.contains(&ni) {
            continue;
        }
        let file = &ws.files[node.file];
        findings.push(Finding {
            rule: "dead-export",
            path: file.path.clone(),
            line: item.line + 1,
            message: format!(
                "`{}` is pub but has no caller outside its crate (tests/benches \
                 included): demote to pub(crate), remove, or allowlist with the \
                 consumer it exists for",
                node.qualified
            ),
            key: file
                .masked
                .raw_lines
                .get(item.line)
                .map(|l| l.trim().to_string())
                .unwrap_or_default(),
            severity: Severity::Warning,
            witness: Vec::new(),
        });
    }
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::{Graph, Workspace};

    fn dead(sources: &[(&str, &str)]) -> Vec<String> {
        let ws = Workspace::from_sources(sources);
        let g = Graph::build(&ws);
        run(&ws, &g).into_iter().map(|f| f.message).collect()
    }

    #[test]
    fn uncalled_pub_fn_is_dead() {
        let msgs = dead(&[("crates/a/src/lib.rs", "pub fn orphan() {}\n")]);
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].contains("uhscm_a::orphan"));
    }

    #[test]
    fn cross_crate_and_test_callers_keep_exports_alive() {
        let msgs = dead(&[
            ("crates/a/src/lib.rs", "pub fn used_by_b() {}\npub fn used_by_test() {}\n"),
            ("crates/b/src/lib.rs", "pub fn caller() { uhscm_a::used_by_b(); }\n"),
            ("tests/e2e.rs", "#[test]\nfn t() { uhscm_a::used_by_test(); uhscm_b::caller(); }\n"),
        ]);
        assert!(msgs.is_empty(), "{msgs:?}");
    }

    #[test]
    fn same_crate_caller_does_not_keep_export_alive() {
        let msgs = dead(&[(
            "crates/a/src/lib.rs",
            "pub fn outer() { inner_api(); }\npub fn inner_api() {}\n",
        )]);
        // Both are dead: `outer` has no caller at all, `inner_api` only an
        // intra-crate one.
        assert_eq!(msgs.len(), 2, "{msgs:?}");
    }

    #[test]
    fn trait_impls_private_fns_and_main_are_exempt() {
        let msgs = dead(&[(
            "crates/a/src/lib.rs",
            "pub struct S;\n\
             impl Default for S { fn default() -> S { S } }\n\
             fn private() {}\n\
             pub fn main() {}\n",
        )]);
        assert!(msgs.is_empty(), "{msgs:?}");
    }
}
