//! Determinism audit: hash-order iteration on reachable numeric paths.
//!
//! `HashMap`/`HashSet` iteration order is unspecified and can differ
//! between runs (and between std versions), so any float accumulation —
//! or even bucket-stats reporting — driven by it breaks the bitwise
//! reproducibility contract of the parallel runtime (DESIGN.md §9). A
//! library function reachable from a hot-path root that iterates a hash
//! collection is therefore an error: use `BTreeMap`/`BTreeSet` or sort
//! the keys first.

use crate::callgraph::{Graph, Workspace};
use crate::rules::{Category, Finding, Severity, WitnessStep};
use std::collections::BTreeMap;

/// `reach_witness` maps every node reachable from some root to one
/// (shortest-found) witness chain, as computed by the panic pass.
pub fn run(
    ws: &Workspace,
    g: &Graph,
    reach_witness: &BTreeMap<usize, Vec<WitnessStep>>,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (&n, chain) in reach_witness {
        let node = &g.nodes[n];
        if node.category != Category::Library {
            continue;
        }
        let item = g.item(ws, n);
        if item.in_test {
            continue;
        }
        let file = &ws.files[node.file];
        for site in &item.hash_iters {
            findings.push(Finding {
                rule: "hash-iter",
                path: file.path.clone(),
                line: site.line + 1,
                message: format!(
                    "hash-order iteration over `{}` (via `{}`) in `{}`, reachable from \
                     hot-path root `{}`: iteration order is nondeterministic — use \
                     BTreeMap/BTreeSet or sort keys before iterating",
                    site.binding,
                    site.method,
                    node.qualified,
                    chain.first().map(|w| w.qualified.as_str()).unwrap_or("?"),
                ),
                key: file
                    .masked
                    .raw_lines
                    .get(site.line)
                    .map(|l| l.trim().to_string())
                    .unwrap_or_default(),
                severity: Severity::Error,
                witness: chain.clone(),
            });
        }
    }
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    findings
}

#[cfg(test)]
mod tests {
    use super::super::run as analyse;
    use crate::callgraph::{Graph, Workspace};

    #[test]
    fn reachable_hash_iteration_is_flagged_with_witness() {
        let ws = Workspace::from_sources(&[
            ("crates/core/src/pipeline.rs", "pub fn run() -> u64 { crate::trainer::epoch() }\n"),
            (
                "crates/core/src/trainer.rs",
                "pub fn epoch() -> u64 { stats() }\n\
                 fn stats() -> u64 {\n\
                 \x20   let mut m: HashMap<u64, u64> = HashMap::new();\n\
                 \x20   let mut acc = 0;\n\
                 \x20   for v in m.values() { acc += v; }\n\
                 \x20   acc\n\
                 }\n",
            ),
        ]);
        let g = Graph::build(&ws);
        let a = analyse(
            &ws,
            &g,
            Some("uhscm_core::pipeline\t0\nuhscm_core::trainer\t0\n"),
            Some("uhscm_core::pipeline\t0\nuhscm_core::trainer\t0\n"),
            Some(""),
            None,
        );
        let f = a
            .findings
            .iter()
            .find(|f| f.rule == "hash-iter")
            .expect("hash iteration must be flagged");
        assert_eq!(f.path, "crates/core/src/trainer.rs");
        assert!(f.message.contains("`m`"));
        let chain: Vec<&str> = f.witness.iter().map(|w| w.qualified.as_str()).collect();
        assert!(chain.ends_with(&["uhscm_core::trainer::stats"]), "{chain:?}");
        assert!(!f.witness.is_empty());
    }

    #[test]
    fn unreachable_or_btree_iteration_is_clean() {
        let ws = Workspace::from_sources(&[
            (
                "crates/core/src/pipeline.rs",
                "pub fn run() -> u64 { 0 }\n\
                 fn orphan() -> u64 {\n\
                 \x20   let m: HashMap<u64, u64> = HashMap::new();\n\
                 \x20   let mut acc = 0;\n\
                 \x20   for v in m.values() { acc += v; }\n\
                 \x20   acc\n\
                 }\n",
            ),
            (
                "crates/core/src/trainer.rs",
                "pub fn epoch() -> u64 {\n\
                 \x20   let m: BTreeMap<u64, u64> = BTreeMap::new();\n\
                 \x20   m.values().sum()\n\
                 }\n",
            ),
        ]);
        let g = Graph::build(&ws);
        let a = analyse(
            &ws,
            &g,
            Some("uhscm_core::pipeline\t0\nuhscm_core::trainer\t0\n"),
            Some("uhscm_core::pipeline\t0\nuhscm_core::trainer\t0\n"),
            Some(""),
            None,
        );
        assert!(
            a.findings.iter().all(|f| f.rule != "hash-iter"),
            "{:?}",
            a.findings.iter().map(|f| &f.message).collect::<Vec<_>>()
        );
    }
}
