//! Semantic passes over the workspace call graph.
//!
//! Seven analyses run on every lint (DESIGN.md §11, §13, §16):
//!
//! * **panic-reachability** ([`panic_reach`]) — BFS from the declared
//!   hot-path roots below; every intrinsic panic site in a reachable
//!   function counts against that root's budget in `xtask/panic.budget`.
//!   Growth over the checked-in budget is an error (never allowlistable);
//!   slack is a warning nudging a `--write-budget` re-baseline.
//! * **determinism** ([`determinism`]) — `HashMap`/`HashSet` iteration in
//!   any library function reachable from a root is an error: iteration
//!   order can reorder float accumulation across runs.
//! * **dead-export** ([`dead_export`]) — `pub` library functions with no
//!   caller outside their crate (tests count) are warnings.
//! * **lock-order** ([`locks`]) — cycles and same-lock re-entry in the
//!   acquired-while-held graph; errors, never allowlistable.
//! * **blocking-under-lock** ([`locks`]) — blocking operations reachable
//!   while a guard is live; errors, allowlistable with justification
//!   (intentional `Condvar::wait` coalescing).
//! * **alloc-budget** ([`alloc_budget`]) — allocation sites reachable from
//!   the hot-path roots, pinned by `xtask/alloc.budget` with the same
//!   semantics as the panic budget (shared machinery in [`budget`]).
//! * **taint-flow** ([`taint`]) — untrusted wire/CLI/bundle values flowing
//!   to indexing, narrowing-cast, unchecked-arithmetic, and
//!   allocation-size sinks, pinned by `xtask/taint.budget`.
//!
//! `lint --only <pass>` runs a single analysis by the names in
//! [`PASS_NAMES`]; `ci` always runs the full set.

pub mod alloc_budget;
pub mod budget;
pub mod dead_export;
pub mod determinism;
pub mod locks;
pub mod panic_reach;
pub mod taint;

pub use budget::BudgetStatus;

use crate::callgraph::{Graph, Workspace};
use crate::parser::PanicKind;
use crate::rules::{Finding, Severity, WitnessStep};
use std::collections::BTreeMap;
use std::time::Instant;

/// Which functions of a root file seed the reachability walk.
pub enum RootFns {
    /// Every non-test `pub fn` in the file.
    PubFns,
    /// Only the named functions (e.g. the probe path of an index).
    Named(&'static [&'static str]),
}

/// A hot-path root: a file whose entry points must stay panic-tight.
pub struct RootSpec {
    pub name: &'static str,
    pub path: &'static str,
    pub fns: RootFns,
}

/// The declared hot paths of the reproduction: training pipeline, trainer
/// internals, retrieval metrics, the index probe path, the parallel
/// fan-out runtime, the serve read/write path (generation-swapped
/// shards plus the batch worker and connection dispatch), and the
/// segment-store reader/writer streamed by out-of-core builds.
pub const ROOTS: &[RootSpec] = &[
    RootSpec {
        name: "uhscm_core::pipeline",
        path: "crates/core/src/pipeline.rs",
        fns: RootFns::PubFns,
    },
    RootSpec {
        name: "uhscm_core::trainer",
        path: "crates/core/src/trainer.rs",
        fns: RootFns::PubFns,
    },
    RootSpec {
        name: "uhscm_eval::metrics",
        path: "crates/eval/src/metrics.rs",
        fns: RootFns::PubFns,
    },
    RootSpec {
        name: "uhscm_eval::index",
        path: "crates/eval/src/index.rs",
        fns: RootFns::Named(&["build", "insert", "remove", "lookup", "knn"]),
    },
    RootSpec { name: "uhscm_linalg::par", path: "crates/linalg/src/par.rs", fns: RootFns::PubFns },
    RootSpec {
        name: "uhscm_serve::shard",
        path: "crates/serve/src/shard.rs",
        fns: RootFns::Named(&["new", "search", "insert", "remove", "snapshot"]),
    },
    RootSpec {
        name: "uhscm_serve::server",
        path: "crates/serve/src/server.rs",
        fns: RootFns::Named(&["run_batch", "handle_frame"]),
    },
    RootSpec {
        name: "uhscm_store::segment",
        path: "crates/store/src/segment.rs",
        fns: RootFns::PubFns,
    },
];

/// One panic site reachable from a root, with its call-chain witness
/// (root fn first, function containing the site last).
pub struct SiteReport {
    pub kind: PanicKind,
    pub path: String,
    /// 1-based.
    pub line: usize,
    pub fn_qualified: String,
    pub witness: Vec<WitnessStep>,
}

/// Per-root reachability summary for the report.
pub struct RootReport {
    pub root: &'static str,
    pub budget: Option<u64>,
    pub reachable_fns: usize,
    pub sites: Vec<SiteReport>,
    pub status: BudgetStatus,
}

/// Everything the semantic passes produce.
pub struct Analysis {
    pub findings: Vec<Finding>,
    pub roots: Vec<RootReport>,
    pub alloc_roots: Vec<alloc_budget::AllocRootReport>,
    pub taint_roots: Vec<taint::TaintRootReport>,
    /// `(analysis name, wall-time nanos)` per pass that ran, report order.
    pub timings: Vec<(&'static str, u128)>,
}

/// The analyses, in report order — the valid arguments to
/// `lint --only <pass>`.
pub const PASS_NAMES: &[&str] = &[
    "panic-reachability",
    "determinism",
    "dead-export",
    "lock-order",
    "blocking-under-lock",
    "alloc-budget",
    "taint-flow",
];

/// Run the passes. The `*_budget_src` arguments are the contents of the
/// corresponding `xtask/*.budget` files (`None` = file missing, an
/// error). Roots whose file has no matching functions in `ws` are
/// skipped, so fixture workspaces exercise only the roots they define.
/// `only` restricts the run to a single pass from [`PASS_NAMES`]
/// (`None` = run everything); `timings` lists only the passes that ran.
pub fn run(
    ws: &Workspace,
    g: &Graph,
    panic_budget_src: Option<&str>,
    alloc_budget_src: Option<&str>,
    taint_budget_src: Option<&str>,
    only: Option<&str>,
) -> Analysis {
    let enabled = |name: &str| only.map_or(true, |o| o == name);
    let mut findings = Vec::new();
    let mut roots_out = Vec::new();
    let mut timings: Vec<(&'static str, u128)> = Vec::new();

    // Reachability per root; remembered for the determinism pass so its
    // findings can reuse the cheapest witness chain.
    let mut reach_witness: BTreeMap<usize, Vec<WitnessStep>> = BTreeMap::new();

    if enabled("panic-reachability") {
        let spec = &budget::PANIC_BUDGET;
        let (panic_budget, budget_errors) = budget::parse(spec, panic_budget_src);
        for e in budget_errors {
            findings.push(budget::finding(spec, e, Severity::Error, Vec::new()));
        }
        let t = Instant::now();
        let mut budgeted_roots: Vec<&str> = Vec::new();

        for spec_root in ROOTS {
            let seeds = seeds_for(ws, g, spec_root);
            if seeds.is_empty() {
                continue;
            }
            budgeted_roots.push(spec_root.name);
            let parent = panic_reach::reach(ws, g, &seeds);
            let mut sites = Vec::new();
            for &n in parent.keys() {
                let chain = panic_reach::witness(ws, g, &parent, n);
                reach_witness.entry(n).or_insert_with(|| chain.clone());
                let item = g.item(ws, n);
                for site in &item.panic_sites {
                    sites.push(SiteReport {
                        kind: site.kind,
                        path: g.path(ws, n).to_string(),
                        line: site.line + 1,
                        fn_qualified: g.nodes[n].qualified.clone(),
                        witness: chain.clone(),
                    });
                }
            }
            sites.sort_by(|a, b| {
                (&a.path, a.line, a.kind, &a.fn_qualified).cmp(&(
                    &b.path,
                    b.line,
                    b.kind,
                    &b.fn_qualified,
                ))
            });

            let allotted = panic_budget.as_ref().and_then(|b| b.get(spec_root.name).copied());
            let count = sites.len() as u64;
            let status = budget::status(allotted, count);
            let witness = if status == BudgetStatus::Over {
                sites.first().map(|s| s.witness.clone()).unwrap_or_default()
            } else {
                Vec::new()
            };
            if let Some(f) =
                budget::status_finding(spec, spec_root.name, allotted, count, status, witness)
            {
                findings.push(f);
            }
            roots_out.push(RootReport {
                root: spec_root.name,
                budget: allotted,
                reachable_fns: parent.len(),
                sites,
                status,
            });
        }
        findings.extend(budget::stale_findings(spec, &panic_budget, &budgeted_roots));
        timings.push(("panic-reachability", t.elapsed().as_nanos()));
    } else if enabled("determinism") {
        // Determinism reuses the reachability witnesses; compute them
        // without any budget bookkeeping when the panic pass is skipped.
        for spec_root in ROOTS {
            let seeds = seeds_for(ws, g, spec_root);
            if seeds.is_empty() {
                continue;
            }
            let parent = panic_reach::reach(ws, g, &seeds);
            for &n in parent.keys() {
                reach_witness.entry(n).or_insert_with(|| panic_reach::witness(ws, g, &parent, n));
            }
        }
    }

    if enabled("determinism") {
        let t = Instant::now();
        findings.extend(determinism::run(ws, g, &reach_witness));
        timings.push(("determinism", t.elapsed().as_nanos()));
    }

    if enabled("dead-export") {
        let t = Instant::now();
        findings.extend(dead_export::run(ws, g));
        timings.push(("dead-export", t.elapsed().as_nanos()));
    }

    if enabled("lock-order") || enabled("blocking-under-lock") {
        let lock_report = locks::run(ws, g);
        if enabled("lock-order") {
            findings.extend(lock_report.lock_order);
            timings.push(("lock-order", lock_report.order_nanos));
        }
        if enabled("blocking-under-lock") {
            findings.extend(lock_report.blocking);
            timings.push(("blocking-under-lock", lock_report.blocking_nanos));
        }
    }

    let mut alloc_roots = Vec::new();
    if enabled("alloc-budget") {
        let t = Instant::now();
        let (alloc_findings, roots) = alloc_budget::run(ws, g, alloc_budget_src);
        findings.extend(alloc_findings);
        alloc_roots = roots;
        timings.push(("alloc-budget", t.elapsed().as_nanos()));
    }

    let mut taint_roots = Vec::new();
    if enabled("taint-flow") {
        let t = Instant::now();
        let (taint_findings, roots) = taint::run(ws, g, taint_budget_src);
        findings.extend(taint_findings);
        taint_roots = roots;
        timings.push(("taint-flow", t.elapsed().as_nanos()));
    }

    Analysis { findings, roots: roots_out, alloc_roots, taint_roots, timings }
}

/// Seed nodes for one root: non-test functions of the root file matching
/// its `RootFns` selector.
fn seeds_for(ws: &Workspace, g: &Graph, spec: &RootSpec) -> Vec<usize> {
    let mut out = Vec::new();
    for (ni, node) in g.nodes.iter().enumerate() {
        if ws.files[node.file].path != spec.path {
            continue;
        }
        let item = g.item(ws, ni);
        if item.in_test {
            continue;
        }
        let selected = match spec.fns {
            RootFns::PubFns => item.is_pub,
            RootFns::Named(names) => names.contains(&item.name.as_str()),
        };
        if selected {
            out.push(ni);
        }
    }
    out
}

/// Render `xtask/panic.budget` from a fresh analysis (for `--write-budget`).
pub fn render_budget(roots: &[RootReport]) -> String {
    let counts: Vec<(&str, usize)> = roots.iter().map(|r| (r.root, r.sites.len())).collect();
    budget::render(&budget::PANIC_BUDGET, &counts)
}

/// Render `xtask/alloc.budget` from a fresh analysis (for `--write-budget`).
pub fn render_alloc_budget(roots: &[alloc_budget::AllocRootReport]) -> String {
    let counts: Vec<(&str, usize)> = roots.iter().map(|r| (r.root, r.sites.len())).collect();
    budget::render(&budget::ALLOC_BUDGET, &counts)
}

/// Render `xtask/taint.budget` from a fresh analysis (for `--write-budget`).
pub fn render_taint_budget(roots: &[taint::TaintRootReport]) -> String {
    let counts: Vec<(&str, usize)> = roots.iter().map(|r| (r.root, r.sites.len())).collect();
    budget::render(&budget::TAINT_BUDGET, &counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::{Graph, Workspace};

    /// A miniature hot path mirroring the real layout: `pipeline::run →
    /// trainer::epoch → loss`, with one intrinsic panic site in `loss`.
    fn fixture(extra_panic: bool) -> Vec<(String, String)> {
        let trainer = format!(
            "pub fn epoch(x: &[f64]) -> f64 {{ loss(x) }}\n\
             fn loss(x: &[f64]) -> f64 {{ x[0] }}\n{}",
            if extra_panic {
                "pub fn diag(x: &[f64]) -> f64 { x.first().copied().unwrap() }\n"
            } else {
                ""
            }
        );
        vec![
            (
                "crates/core/src/pipeline.rs".to_string(),
                "pub fn run(x: &[f64]) -> f64 { crate::trainer::epoch(x) }\n".to_string(),
            ),
            ("crates/core/src/trainer.rs".to_string(), trainer),
        ]
    }

    /// The fixture has no allocation sites, so a zeroed alloc budget keeps
    /// the alloc pass clean while the panic assertions run.
    const ZERO_ALLOC: &str = "uhscm_core::pipeline\t0\nuhscm_core::trainer\t0\n";

    /// The fixture defines none of the taint source functions, so an
    /// empty taint budget stays clean.
    const NO_TAINT: &str = "";

    fn analyse(extra_panic: bool, budget: &str) -> Analysis {
        let ws = Workspace::from_sources(&fixture(extra_panic));
        let g = Graph::build(&ws);
        run(&ws, &g, Some(budget), Some(ZERO_ALLOC), Some(NO_TAINT), None)
    }

    #[test]
    fn known_chain_has_correct_witness() {
        // pipeline budget: the x[0] in loss is reachable via epoch.
        let a = analyse(false, "uhscm_core::pipeline\t1\nuhscm_core::trainer\t1\n");
        assert!(
            a.findings.iter().all(|f| f.severity != crate::rules::Severity::Error),
            "{:?}",
            a.findings.iter().map(|f| &f.message).collect::<Vec<_>>()
        );
        let pipeline = a.roots.iter().find(|r| r.root == "uhscm_core::pipeline").unwrap();
        assert_eq!(pipeline.status, BudgetStatus::Ok);
        assert_eq!(pipeline.sites.len(), 1);
        let site = &pipeline.sites[0];
        assert_eq!(site.path, "crates/core/src/trainer.rs");
        assert_eq!(site.fn_qualified, "uhscm_core::trainer::loss");
        let chain: Vec<&str> = site.witness.iter().map(|w| w.qualified.as_str()).collect();
        assert_eq!(
            chain,
            vec![
                "uhscm_core::pipeline::run",
                "uhscm_core::trainer::epoch",
                "uhscm_core::trainer::loss"
            ]
        );
    }

    #[test]
    fn all_seven_passes_report_timings() {
        let a = analyse(false, "uhscm_core::pipeline\t1\nuhscm_core::trainer\t1\n");
        let names: Vec<&str> = a.timings.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, PASS_NAMES);
    }

    #[test]
    fn only_restricts_to_a_single_pass() {
        let ws = Workspace::from_sources(&fixture(false));
        let g = Graph::build(&ws);
        let a = run(&ws, &g, None, None, None, Some("dead-export"));
        let names: Vec<&str> = a.timings.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["dead-export"]);
        // Skipped passes must not complain about their missing budgets.
        assert!(a.findings.iter().all(|f| !f.rule.ends_with("-budget")), "no budget findings");

        // Determinism alone still gets reachability witnesses without
        // running the panic budget bookkeeping.
        let d = run(&ws, &g, None, None, None, Some("determinism"));
        let names: Vec<&str> = d.timings.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["determinism"]);
    }

    #[test]
    fn new_hot_path_panic_site_fails_the_budget() {
        // Negative test: inject a fresh unwrap into the trainer fixture and
        // keep the old budget — the trainer root must go over.
        let a = analyse(true, "uhscm_core::pipeline\t1\nuhscm_core::trainer\t1\n");
        let over = a
            .findings
            .iter()
            .find(|f| f.rule == "panic-budget" && f.message.contains("uhscm_core::trainer"))
            .expect("expected an over-budget error for the trainer root");
        assert_eq!(over.severity, crate::rules::Severity::Error);
        assert!(!over.witness.is_empty(), "over-budget finding carries a witness chain");
        let trainer = a.roots.iter().find(|r| r.root == "uhscm_core::trainer").unwrap();
        assert_eq!(trainer.status, BudgetStatus::Over);
        assert_eq!(trainer.sites.len(), 2);
    }

    #[test]
    fn slack_budget_warns_missing_root_errors() {
        let slack = analyse(false, "uhscm_core::pipeline\t5\nuhscm_core::trainer\t1\n");
        assert!(slack.findings.iter().any(|f| f.rule == "panic-budget"
            && f.severity == crate::rules::Severity::Warning
            && f.message.contains("slack")));

        let missing = analyse(false, "uhscm_core::trainer\t1\n");
        assert!(missing.findings.iter().any(|f| f.rule == "panic-budget"
            && f.severity == crate::rules::Severity::Error
            && f.message.contains("no entry")));
    }

    #[test]
    fn stale_budget_roots_error() {
        let a = analyse(
            false,
            "uhscm_core::pipeline\t1\nuhscm_core::trainer\t1\nuhscm_eval::metrics\t0\n",
        );
        assert!(a
            .findings
            .iter()
            .any(|f| f.rule == "panic-budget" && f.message.contains("stale entry")));
    }

    #[test]
    fn missing_budget_file_is_an_error() {
        let ws = Workspace::from_sources(&fixture(false));
        let g = Graph::build(&ws);
        let a = run(&ws, &g, None, Some(ZERO_ALLOC), Some(NO_TAINT), None);
        assert!(a
            .findings
            .iter()
            .any(|f| f.rule == "panic-budget" && f.message.contains("missing")));
        let panic_ok = "uhscm_core::pipeline\t1\nuhscm_core::trainer\t1\n";
        let b = run(&ws, &g, Some(panic_ok), None, Some(NO_TAINT), None);
        assert!(b
            .findings
            .iter()
            .any(|f| f.rule == "alloc-budget" && f.message.contains("missing")));
        let c = run(&ws, &g, Some(panic_ok), Some(ZERO_ALLOC), None, None);
        assert!(c
            .findings
            .iter()
            .any(|f| f.rule == "taint-budget" && f.message.contains("missing")));
    }

    #[test]
    fn budget_roundtrips_through_render() {
        let a = analyse(false, "uhscm_core::pipeline\t1\nuhscm_core::trainer\t1\n");
        let rendered = render_budget(&a.roots);
        assert!(rendered.contains("uhscm_core::pipeline\t1"));
        assert!(rendered.contains("uhscm_core::trainer\t1"));
        let (parsed, errs) = budget::parse(&budget::PANIC_BUDGET, Some(&rendered));
        assert!(errs.is_empty());
        assert_eq!(parsed.unwrap().len(), 2);
        let alloc_rendered = render_alloc_budget(&a.alloc_roots);
        assert!(alloc_rendered.contains("uhscm_core::pipeline\t0"));
    }
}
