//! Semantic passes over the workspace call graph.
//!
//! Three analyses run on every lint (DESIGN.md §11):
//!
//! * **panic-reachability** ([`panic_reach`]) — BFS from the declared
//!   hot-path roots below; every intrinsic panic site in a reachable
//!   function counts against that root's budget in `xtask/panic.budget`.
//!   Growth over the checked-in budget is an error (never allowlistable);
//!   slack is a warning nudging a `--write-budget` re-baseline.
//! * **determinism** ([`determinism`]) — `HashMap`/`HashSet` iteration in
//!   any library function reachable from a root is an error: iteration
//!   order can reorder float accumulation across runs.
//! * **dead-export** ([`dead_export`]) — `pub` library functions with no
//!   caller outside their crate (tests count) are warnings.

pub mod dead_export;
pub mod determinism;
pub mod panic_reach;

use crate::callgraph::{Graph, Workspace};
use crate::parser::PanicKind;
use crate::rules::{Finding, Severity, WitnessStep};
use std::collections::BTreeMap;

/// Which functions of a root file seed the reachability walk.
pub enum RootFns {
    /// Every non-test `pub fn` in the file.
    PubFns,
    /// Only the named functions (e.g. the probe path of an index).
    Named(&'static [&'static str]),
}

/// A hot-path root: a file whose entry points must stay panic-tight.
pub struct RootSpec {
    pub name: &'static str,
    pub path: &'static str,
    pub fns: RootFns,
}

/// The declared hot paths of the reproduction: training pipeline, trainer
/// internals, retrieval metrics, the index probe path, and the parallel
/// fan-out runtime.
pub const ROOTS: &[RootSpec] = &[
    RootSpec {
        name: "uhscm_core::pipeline",
        path: "crates/core/src/pipeline.rs",
        fns: RootFns::PubFns,
    },
    RootSpec {
        name: "uhscm_core::trainer",
        path: "crates/core/src/trainer.rs",
        fns: RootFns::PubFns,
    },
    RootSpec {
        name: "uhscm_eval::metrics",
        path: "crates/eval/src/metrics.rs",
        fns: RootFns::PubFns,
    },
    RootSpec {
        name: "uhscm_eval::index",
        path: "crates/eval/src/index.rs",
        fns: RootFns::Named(&["build", "insert", "remove", "lookup", "knn"]),
    },
    RootSpec { name: "uhscm_linalg::par", path: "crates/linalg/src/par.rs", fns: RootFns::PubFns },
];

/// One panic site reachable from a root, with its call-chain witness
/// (root fn first, function containing the site last).
pub struct SiteReport {
    pub kind: PanicKind,
    pub path: String,
    /// 1-based.
    pub line: usize,
    pub fn_qualified: String,
    pub witness: Vec<WitnessStep>,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BudgetStatus {
    Ok,
    /// More reachable sites than budgeted — lint fails.
    Over,
    /// Fewer sites than budgeted — warning to tighten the baseline.
    Under,
    /// Root absent from the budget file — lint fails.
    Unlisted,
}

impl BudgetStatus {
    pub fn label(self) -> &'static str {
        match self {
            BudgetStatus::Ok => "ok",
            BudgetStatus::Over => "over",
            BudgetStatus::Under => "under",
            BudgetStatus::Unlisted => "unlisted",
        }
    }
}

/// Per-root reachability summary for the report.
pub struct RootReport {
    pub root: &'static str,
    pub budget: Option<u64>,
    pub reachable_fns: usize,
    pub sites: Vec<SiteReport>,
    pub status: BudgetStatus,
}

/// Everything the semantic passes produce.
pub struct Analysis {
    pub findings: Vec<Finding>,
    pub roots: Vec<RootReport>,
}

/// Run all three passes. `budget_src` is the content of
/// `xtask/panic.budget` (`None` = file missing, an error when any root
/// matches). Roots whose file has no matching functions in `ws` are
/// skipped, so fixture workspaces exercise only the roots they define.
pub fn run(ws: &Workspace, g: &Graph, budget_src: Option<&str>) -> Analysis {
    let mut findings = Vec::new();
    let mut roots_out = Vec::new();
    let (budget, budget_errors) = parse_budget(budget_src);
    for e in budget_errors {
        findings.push(budget_finding(e, Severity::Error, Vec::new()));
    }

    // Reachability per root; remembered for the determinism pass so its
    // findings can reuse the cheapest witness chain.
    let mut reach_witness: BTreeMap<usize, Vec<WitnessStep>> = BTreeMap::new();
    let mut budgeted_roots: Vec<&str> = Vec::new();

    for spec in ROOTS {
        let seeds = seeds_for(ws, g, spec);
        if seeds.is_empty() {
            continue;
        }
        budgeted_roots.push(spec.name);
        let parent = panic_reach::reach(ws, g, &seeds);
        let mut sites = Vec::new();
        for &n in parent.keys() {
            let chain = panic_reach::witness(ws, g, &parent, n);
            reach_witness.entry(n).or_insert_with(|| chain.clone());
            let item = g.item(ws, n);
            for site in &item.panic_sites {
                sites.push(SiteReport {
                    kind: site.kind,
                    path: g.path(ws, n).to_string(),
                    line: site.line + 1,
                    fn_qualified: g.nodes[n].qualified.clone(),
                    witness: chain.clone(),
                });
            }
        }
        sites.sort_by(|a, b| {
            (&a.path, a.line, a.kind, &a.fn_qualified).cmp(&(
                &b.path,
                b.line,
                b.kind,
                &b.fn_qualified,
            ))
        });

        let allotted = budget.as_ref().and_then(|b| b.get(spec.name).copied());
        let count = sites.len() as u64;
        let status = match allotted {
            None if budget.is_some() => BudgetStatus::Unlisted,
            None => BudgetStatus::Unlisted,
            Some(b) if count > b => BudgetStatus::Over,
            Some(b) if count < b => BudgetStatus::Under,
            Some(_) => BudgetStatus::Ok,
        };
        match status {
            BudgetStatus::Over => {
                let b = allotted.expect("Over implies a budget entry");
                let witness = sites.first().map(|s| s.witness.clone()).unwrap_or_default();
                findings.push(budget_finding(
                    format!(
                        "panic budget exceeded for root `{}`: {count} reachable panic \
                         sites, budget {b} — remove the new site or re-baseline with \
                         `--write-budget` and justify in the PR",
                        spec.name
                    ),
                    Severity::Error,
                    witness,
                ));
            }
            BudgetStatus::Under => {
                let b = allotted.expect("Under implies a budget entry");
                findings.push(budget_finding(
                    format!(
                        "panic budget slack for root `{}`: {count} reachable panic sites, \
                         budget {b} — tighten with `--write-budget`",
                        spec.name
                    ),
                    Severity::Warning,
                    Vec::new(),
                ));
            }
            BudgetStatus::Unlisted => {
                findings.push(budget_finding(
                    format!(
                        "root `{}` has no entry in xtask/panic.budget — run \
                         `cargo run -p uhscm-xtask -- lint --write-budget`",
                        spec.name
                    ),
                    Severity::Error,
                    Vec::new(),
                ));
            }
            BudgetStatus::Ok => {}
        }
        roots_out.push(RootReport {
            root: spec.name,
            budget: allotted,
            reachable_fns: parent.len(),
            sites,
            status,
        });
    }

    // Budget entries for roots that matched nothing are stale.
    if let Some(b) = &budget {
        for root in b.keys() {
            if !budgeted_roots.contains(&root.as_str()) {
                findings.push(budget_finding(
                    format!(
                        "stale entry `{root}` in xtask/panic.budget matches no root \
                         with functions — remove it or run `--write-budget`"
                    ),
                    Severity::Error,
                    Vec::new(),
                ));
            }
        }
    }

    findings.extend(determinism::run(ws, g, &reach_witness));
    findings.extend(dead_export::run(ws, g));
    Analysis { findings, roots: roots_out }
}

fn budget_finding(message: String, severity: Severity, witness: Vec<WitnessStep>) -> Finding {
    Finding {
        rule: "panic-budget",
        path: "xtask/panic.budget".to_string(),
        line: 1,
        key: String::new(),
        message,
        severity,
        witness,
    }
}

/// Seed nodes for one root: non-test functions of the root file matching
/// its `RootFns` selector.
fn seeds_for(ws: &Workspace, g: &Graph, spec: &RootSpec) -> Vec<usize> {
    let mut out = Vec::new();
    for (ni, node) in g.nodes.iter().enumerate() {
        if ws.files[node.file].path != spec.path {
            continue;
        }
        let item = g.item(ws, ni);
        if item.in_test {
            continue;
        }
        let selected = match spec.fns {
            RootFns::PubFns => item.is_pub,
            RootFns::Named(names) => names.contains(&item.name.as_str()),
        };
        if selected {
            out.push(ni);
        }
    }
    out
}

/// Parse `xtask/panic.budget`: `#` comments and `root<TAB>count` lines.
fn parse_budget(src: Option<&str>) -> (Option<BTreeMap<String, u64>>, Vec<String>) {
    let Some(src) = src else {
        return (
            None,
            vec!["xtask/panic.budget missing — generate it with \
                 `cargo run -p uhscm-xtask -- lint --write-budget`"
                .to_string()],
        );
    };
    let mut map = BTreeMap::new();
    let mut errors = Vec::new();
    for (idx, line) in src.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = line.split('\t');
        let (root, count) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
        if parts.next().is_some() || root.trim().is_empty() {
            errors.push(format!("xtask/panic.budget:{}: expected `root<TAB>count`", idx + 1));
            continue;
        }
        match count.trim().parse::<u64>() {
            Ok(n) => {
                if map.insert(root.trim().to_string(), n).is_some() {
                    errors.push(format!(
                        "xtask/panic.budget:{}: duplicate root `{}`",
                        idx + 1,
                        root.trim()
                    ));
                }
            }
            Err(_) => errors.push(format!(
                "xtask/panic.budget:{}: count `{}` is not a non-negative integer",
                idx + 1,
                count.trim()
            )),
        }
    }
    (Some(map), errors)
}

/// Render the budget file from a fresh analysis (for `--write-budget`).
pub fn render_budget(roots: &[RootReport]) -> String {
    let mut out = String::from(
        "# uhscm panic budget — reachable panic sites per hot-path root.\n\
         # Format: root<TAB>count. Checked against every `xtask lint` run;\n\
         # growth fails the lint (fix the site or regenerate with\n\
         # `cargo run -p uhscm-xtask -- lint --write-budget` and justify in the PR).\n",
    );
    for r in roots {
        out.push_str(&format!("{}\t{}\n", r.root, r.sites.len()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::{Graph, Workspace};

    /// A miniature hot path mirroring the real layout: `pipeline::run →
    /// trainer::epoch → loss`, with one intrinsic panic site in `loss`.
    fn fixture(extra_panic: bool) -> Vec<(String, String)> {
        let trainer = format!(
            "pub fn epoch(x: &[f64]) -> f64 {{ loss(x) }}\n\
             fn loss(x: &[f64]) -> f64 {{ x[0] }}\n{}",
            if extra_panic {
                "pub fn diag(x: &[f64]) -> f64 { x.first().copied().unwrap() }\n"
            } else {
                ""
            }
        );
        vec![
            (
                "crates/core/src/pipeline.rs".to_string(),
                "pub fn run(x: &[f64]) -> f64 { crate::trainer::epoch(x) }\n".to_string(),
            ),
            ("crates/core/src/trainer.rs".to_string(), trainer),
        ]
    }

    fn analyse(extra_panic: bool, budget: &str) -> Analysis {
        let ws = Workspace::from_sources(&fixture(extra_panic));
        let g = Graph::build(&ws);
        run(&ws, &g, Some(budget))
    }

    #[test]
    fn known_chain_has_correct_witness() {
        // pipeline budget: the x[0] in loss is reachable via epoch.
        let a = analyse(false, "uhscm_core::pipeline\t1\nuhscm_core::trainer\t1\n");
        assert!(
            a.findings.iter().all(|f| f.severity != crate::rules::Severity::Error),
            "{:?}",
            a.findings.iter().map(|f| &f.message).collect::<Vec<_>>()
        );
        let pipeline = a.roots.iter().find(|r| r.root == "uhscm_core::pipeline").unwrap();
        assert_eq!(pipeline.status, BudgetStatus::Ok);
        assert_eq!(pipeline.sites.len(), 1);
        let site = &pipeline.sites[0];
        assert_eq!(site.path, "crates/core/src/trainer.rs");
        assert_eq!(site.fn_qualified, "uhscm_core::trainer::loss");
        let chain: Vec<&str> = site.witness.iter().map(|w| w.qualified.as_str()).collect();
        assert_eq!(
            chain,
            vec![
                "uhscm_core::pipeline::run",
                "uhscm_core::trainer::epoch",
                "uhscm_core::trainer::loss"
            ]
        );
    }

    #[test]
    fn new_hot_path_panic_site_fails_the_budget() {
        // Negative test: inject a fresh unwrap into the trainer fixture and
        // keep the old budget — the trainer root must go over.
        let a = analyse(true, "uhscm_core::pipeline\t1\nuhscm_core::trainer\t1\n");
        let over = a
            .findings
            .iter()
            .find(|f| f.rule == "panic-budget" && f.message.contains("uhscm_core::trainer"))
            .expect("expected an over-budget error for the trainer root");
        assert_eq!(over.severity, crate::rules::Severity::Error);
        assert!(!over.witness.is_empty(), "over-budget finding carries a witness chain");
        let trainer = a.roots.iter().find(|r| r.root == "uhscm_core::trainer").unwrap();
        assert_eq!(trainer.status, BudgetStatus::Over);
        assert_eq!(trainer.sites.len(), 2);
    }

    #[test]
    fn slack_budget_warns_missing_root_errors() {
        let slack = analyse(false, "uhscm_core::pipeline\t5\nuhscm_core::trainer\t1\n");
        assert!(slack.findings.iter().any(|f| f.rule == "panic-budget"
            && f.severity == crate::rules::Severity::Warning
            && f.message.contains("slack")));

        let missing = analyse(false, "uhscm_core::trainer\t1\n");
        assert!(missing.findings.iter().any(|f| f.rule == "panic-budget"
            && f.severity == crate::rules::Severity::Error
            && f.message.contains("no entry")));
    }

    #[test]
    fn stale_budget_roots_error() {
        let a = analyse(
            false,
            "uhscm_core::pipeline\t1\nuhscm_core::trainer\t1\nuhscm_eval::metrics\t0\n",
        );
        assert!(a
            .findings
            .iter()
            .any(|f| f.rule == "panic-budget" && f.message.contains("stale entry")));
    }

    #[test]
    fn missing_budget_file_is_an_error() {
        let ws = Workspace::from_sources(&fixture(false));
        let g = Graph::build(&ws);
        let a = run(&ws, &g, None);
        assert!(a
            .findings
            .iter()
            .any(|f| f.rule == "panic-budget" && f.message.contains("missing")));
    }

    #[test]
    fn budget_roundtrips_through_render() {
        let a = analyse(false, "uhscm_core::pipeline\t1\nuhscm_core::trainer\t1\n");
        let rendered = render_budget(&a.roots);
        assert!(rendered.contains("uhscm_core::pipeline\t1"));
        assert!(rendered.contains("uhscm_core::trainer\t1"));
        let (parsed, errs) = parse_budget(Some(&rendered));
        assert!(errs.is_empty());
        assert_eq!(parsed.unwrap().len(), 2);
    }
}
