//! Panic-reachability: BFS over the call graph from hot-path roots.
//!
//! The walk is breadth-first over sorted adjacency lists, so the parent
//! tree — and therefore every witness chain — is deterministic: each
//! reachable function's witness is a shortest chain from a seed, with
//! ties broken by node order (file path, then declaration order).

use crate::callgraph::{Graph, Workspace};
use crate::rules::WitnessStep;
use std::collections::{BTreeMap, VecDeque};

/// Reachable set as `node → parent` (`None` for seeds). `#[cfg(test)]`
/// functions are never entered: edges into test code exist in the graph
/// (for dead-export liveness) but cannot carry hot-path reachability.
pub fn reach(ws: &Workspace, g: &Graph, seeds: &[usize]) -> BTreeMap<usize, Option<usize>> {
    let mut parent: BTreeMap<usize, Option<usize>> = BTreeMap::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &s in seeds {
        if parent.insert(s, None).is_none() {
            queue.push_back(s);
        }
    }
    while let Some(n) = queue.pop_front() {
        for e in &g.edges[n] {
            if parent.contains_key(&e.callee) || g.item(ws, e.callee).in_test {
                continue;
            }
            parent.insert(e.callee, Some(n));
            queue.push_back(e.callee);
        }
    }
    parent
}

/// Witness chain for `node`: seed first, `node` last. Lines are 1-based
/// declaration lines of each function on the chain.
pub fn witness(
    ws: &Workspace,
    g: &Graph,
    parent: &BTreeMap<usize, Option<usize>>,
    node: usize,
) -> Vec<WitnessStep> {
    let mut chain = Vec::new();
    let mut cur = Some(node);
    while let Some(n) = cur {
        let item = g.item(ws, n);
        chain.push(WitnessStep {
            qualified: g.nodes[n].qualified.clone(),
            path: g.path(ws, n).to_string(),
            line: item.line + 1,
        });
        cur = parent.get(&n).copied().flatten();
    }
    chain.reverse();
    chain
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::{Graph, Workspace};

    #[test]
    fn bfs_finds_shortest_witness() {
        // Two paths to `sink`: direct (run → sink) and long (run → mid →
        // sink). BFS must report the 2-hop witness.
        let ws = Workspace::from_sources(&[(
            "crates/a/src/lib.rs",
            "pub fn run() { mid(); sink(); }\nfn mid() { sink(); }\nfn sink() {}\n",
        )]);
        let g = Graph::build(&ws);
        let seed = g.nodes.iter().position(|n| n.qualified == "uhscm_a::run").unwrap();
        let sink = g.nodes.iter().position(|n| n.qualified == "uhscm_a::sink").unwrap();
        let parent = reach(&ws, &g, &[seed]);
        let chain: Vec<String> =
            witness(&ws, &g, &parent, sink).into_iter().map(|w| w.qualified).collect();
        assert_eq!(chain, vec!["uhscm_a::run", "uhscm_a::sink"]);
    }

    #[test]
    fn test_functions_are_not_entered() {
        let ws = Workspace::from_sources(&[(
            "crates/a/src/lib.rs",
            "pub fn run() { helper(); }\nfn helper() {}\n\
             #[cfg(test)]\nmod tests {\n    fn helper() { x.unwrap(); }\n}\n",
        )]);
        let g = Graph::build(&ws);
        let seed = g.nodes.iter().position(|n| n.qualified == "uhscm_a::run").unwrap();
        let parent = reach(&ws, &g, &[seed]);
        for &n in parent.keys() {
            assert!(!g.item(&ws, n).in_test, "reached test fn {}", g.nodes[n].qualified);
        }
    }

    #[test]
    fn cycles_terminate() {
        let ws = Workspace::from_sources(&[(
            "crates/a/src/lib.rs",
            "pub fn a() { b(); }\nfn b() { a(); }\n",
        )]);
        let g = Graph::build(&ws);
        let seed = g.nodes.iter().position(|n| n.qualified == "uhscm_a::a").unwrap();
        let parent = reach(&ws, &g, &[seed]);
        assert_eq!(parent.len(), 2);
    }
}
