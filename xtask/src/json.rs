//! Hand-rolled JSON rendering for `lint --json` (std-only, no serde).
//!
//! Schema `uhscm-lint/3` (v2 + the taint-flow pass):
//!
//! ```text
//! {
//!   "schema": "uhscm-lint/3",
//!   "files_scanned": N,
//!   "analyses": ["panic-reachability", "determinism", "dead-export",
//!                "lock-order", "blocking-under-lock", "alloc-budget",
//!                "taint-flow"],
//!   "findings": [{rule, severity, path, line, message, allowed,
//!                 witness: [{fn, path, line}]}],
//!   "panic_budget": {
//!     "budget_path": "xtask/panic.budget",
//!     "roots": [{root, budget, reachable_fns, reachable_sites, status,
//!                sites: [{kind, path, line, fn, witness: [...]}]}]
//!   },
//!   "alloc_budget": {
//!     "budget_path": "xtask/alloc.budget",
//!     "roots": [{root, budget, reachable_fns, reachable_sites, status,
//!                sites: [{kind, path, line, fn}]}]
//!   },
//!   "taint_budget": {
//!     "budget_path": "xtask/taint.budget",
//!     "roots": [{root, budget, tainted_fns, reachable_sites, status,
//!                sites: [{kind, path, line, fn, source, witness: [...]}]}]
//!   },
//!   "timings": [{analysis, nanos}],
//!   "summary": {findings, errors, warnings, allowlisted}
//! }
//! ```
//!
//! `analyses` is the schema's full pass set; under `lint --only <pass>`
//! the `timings` array reflects which passes actually ran.
//! Alloc sites carry no per-site witness (the vocabulary is too dense);
//! the over-budget finding carries one chain instead. Taint sites carry
//! both their originating `source` function and the source→sink chain.
//! `findings[*].allowed` entries are baselined in `xtask/lint.allow`;
//! `summary.errors` counts only non-allowed errors (the exit-code signal).

use crate::analysis::alloc_budget::AllocRootReport;
use crate::analysis::taint::TaintRootReport;
use crate::analysis::RootReport;
use crate::rules::{Finding, WitnessStep};

/// Escape a string for a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn witness_json(witness: &[WitnessStep]) -> String {
    let steps: Vec<String> = witness
        .iter()
        .map(|w| {
            format!(
                "{{\"fn\":\"{}\",\"path\":\"{}\",\"line\":{}}}",
                esc(&w.qualified),
                esc(&w.path),
                w.line
            )
        })
        .collect();
    format!("[{}]", steps.join(","))
}

/// Everything the report needs; `findings` carries an `allowed` flag per
/// finding (true = covered by `xtask/lint.allow`).
pub struct Report<'a> {
    pub files_scanned: usize,
    pub findings: &'a [(&'a Finding, bool)],
    pub roots: &'a [RootReport],
    pub alloc_roots: &'a [AllocRootReport],
    pub taint_roots: &'a [TaintRootReport],
    /// `(analysis name, wall-time nanos)` per pass that ran.
    pub timings: &'a [(&'static str, u128)],
    pub errors: usize,
    pub warnings: usize,
    pub allowlisted: usize,
}

pub fn render(r: &Report) -> String {
    let mut out = String::from("{\n  \"schema\": \"uhscm-lint/3\",\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", r.files_scanned));
    out.push_str(
        "  \"analyses\": [\"panic-reachability\", \"determinism\", \"dead-export\", \
         \"lock-order\", \"blocking-under-lock\", \"alloc-budget\", \"taint-flow\"],\n",
    );

    let findings: Vec<String> = r
        .findings
        .iter()
        .map(|(f, allowed)| {
            format!(
                "    {{\"rule\":\"{}\",\"severity\":\"{}\",\"path\":\"{}\",\"line\":{},\
                 \"message\":\"{}\",\"allowed\":{},\"witness\":{}}}",
                esc(f.rule),
                f.severity.label(),
                esc(&f.path),
                f.line,
                esc(&f.message),
                allowed,
                witness_json(&f.witness)
            )
        })
        .collect();
    out.push_str(&format!("  \"findings\": [\n{}\n  ],\n", findings.join(",\n")));

    let roots: Vec<String> = r
        .roots
        .iter()
        .map(|root| {
            let sites: Vec<String> = root
                .sites
                .iter()
                .map(|s| {
                    format!(
                        "      {{\"kind\":\"{}\",\"path\":\"{}\",\"line\":{},\"fn\":\"{}\",\
                         \"witness\":{}}}",
                        s.kind.label(),
                        esc(&s.path),
                        s.line,
                        esc(&s.fn_qualified),
                        witness_json(&s.witness)
                    )
                })
                .collect();
            format!(
                "    {{\"root\":\"{}\",\"budget\":{},\"reachable_fns\":{},\
                 \"reachable_sites\":{},\"status\":\"{}\",\"sites\":[\n{}\n    ]}}",
                esc(root.root),
                root.budget.map(|b| b.to_string()).unwrap_or_else(|| "null".to_string()),
                root.reachable_fns,
                root.sites.len(),
                root.status.label(),
                sites.join(",\n")
            )
        })
        .collect();
    out.push_str(&format!(
        "  \"panic_budget\": {{\"budget_path\": \"xtask/panic.budget\", \"roots\": [\n{}\n  ]}},\n",
        roots.join(",\n")
    ));

    let alloc_roots: Vec<String> = r
        .alloc_roots
        .iter()
        .map(|root| {
            let sites: Vec<String> = root
                .sites
                .iter()
                .map(|s| {
                    format!(
                        "      {{\"kind\":\"{}\",\"path\":\"{}\",\"line\":{},\"fn\":\"{}\"}}",
                        s.kind.label(),
                        esc(&s.path),
                        s.line,
                        esc(&s.fn_qualified)
                    )
                })
                .collect();
            format!(
                "    {{\"root\":\"{}\",\"budget\":{},\"reachable_fns\":{},\
                 \"reachable_sites\":{},\"status\":\"{}\",\"sites\":[\n{}\n    ]}}",
                esc(root.root),
                root.budget.map(|b| b.to_string()).unwrap_or_else(|| "null".to_string()),
                root.reachable_fns,
                root.sites.len(),
                root.status.label(),
                sites.join(",\n")
            )
        })
        .collect();
    out.push_str(&format!(
        "  \"alloc_budget\": {{\"budget_path\": \"xtask/alloc.budget\", \"roots\": [\n{}\n  ]}},\n",
        alloc_roots.join(",\n")
    ));

    let taint_roots: Vec<String> = r
        .taint_roots
        .iter()
        .map(|root| {
            let sites: Vec<String> = root
                .sites
                .iter()
                .map(|s| {
                    format!(
                        "      {{\"kind\":\"{}\",\"path\":\"{}\",\"line\":{},\"fn\":\"{}\",\
                         \"source\":\"{}\",\"witness\":{}}}",
                        s.kind.label(),
                        esc(&s.path),
                        s.line,
                        esc(&s.fn_qualified),
                        esc(&s.source),
                        witness_json(&s.witness)
                    )
                })
                .collect();
            format!(
                "    {{\"root\":\"{}\",\"budget\":{},\"tainted_fns\":{},\
                 \"reachable_sites\":{},\"status\":\"{}\",\"sites\":[\n{}\n    ]}}",
                esc(root.root),
                root.budget.map(|b| b.to_string()).unwrap_or_else(|| "null".to_string()),
                root.tainted_fns,
                root.sites.len(),
                root.status.label(),
                sites.join(",\n")
            )
        })
        .collect();
    out.push_str(&format!(
        "  \"taint_budget\": {{\"budget_path\": \"xtask/taint.budget\", \"roots\": [\n{}\n  ]}},\n",
        taint_roots.join(",\n")
    ));

    let timings: Vec<String> = r
        .timings
        .iter()
        .map(|(name, nanos)| format!("    {{\"analysis\":\"{}\",\"nanos\":{}}}", esc(name), nanos))
        .collect();
    out.push_str(&format!("  \"timings\": [\n{}\n  ],\n", timings.join(",\n")));

    out.push_str(&format!(
        "  \"summary\": {{\"findings\": {}, \"errors\": {}, \"warnings\": {}, \"allowlisted\": {}}}\n}}\n",
        r.findings.len(),
        r.errors,
        r.warnings,
        r.allowlisted
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::alloc_budget::{AllocRootReport, AllocSiteReport};
    use crate::analysis::taint::{TaintRootReport, TaintSiteReport};
    use crate::analysis::{BudgetStatus, RootReport, SiteReport};
    use crate::parser::{AllocKind, PanicKind, SinkKind};
    use crate::rules::{Finding, Severity, WitnessStep};

    #[test]
    fn renders_escaped_valid_json() {
        let finding = Finding {
            rule: "no-unwrap",
            path: "crates/a/src/lib.rs".to_string(),
            line: 3,
            message: "say \"no\"\tto unwrap\\panic".to_string(),
            key: String::new(),
            severity: Severity::Error,
            witness: vec![WitnessStep {
                qualified: "uhscm_a::f".to_string(),
                path: "crates/a/src/lib.rs".to_string(),
                line: 1,
            }],
        };
        let roots = [RootReport {
            root: "uhscm_core::pipeline",
            budget: Some(2),
            reachable_fns: 5,
            sites: vec![SiteReport {
                kind: PanicKind::Index,
                path: "crates/a/src/lib.rs".to_string(),
                line: 3,
                fn_qualified: "uhscm_a::f".to_string(),
                witness: Vec::new(),
            }],
            status: BudgetStatus::Ok,
        }];
        let alloc_roots = [AllocRootReport {
            root: "uhscm_core::pipeline",
            budget: Some(4),
            reachable_fns: 5,
            sites: vec![AllocSiteReport {
                kind: AllocKind::Collect,
                path: "crates/a/src/lib.rs".to_string(),
                line: 9,
                fn_qualified: "uhscm_a::f".to_string(),
            }],
            status: BudgetStatus::Under,
        }];
        let taint_roots = [TaintRootReport {
            root: "wire",
            budget: Some(3),
            tainted_fns: 6,
            sites: vec![TaintSiteReport {
                kind: SinkKind::Cast,
                path: "crates/serve/src/server.rs".to_string(),
                line: 12,
                fn_qualified: "uhscm_serve::server::handle_frame".to_string(),
                source: "uhscm_serve::protocol::decode_request".to_string(),
                witness: vec![WitnessStep {
                    qualified: "uhscm_serve::protocol::decode_request".to_string(),
                    path: "crates/serve/src/protocol.rs".to_string(),
                    line: 4,
                }],
            }],
            status: BudgetStatus::Ok,
        }];
        let out = render(&Report {
            files_scanned: 7,
            findings: &[(&finding, true)],
            roots: &roots,
            alloc_roots: &alloc_roots,
            taint_roots: &taint_roots,
            timings: &[("panic-reachability", 1200), ("alloc-budget", 800)],
            errors: 0,
            warnings: 0,
            allowlisted: 1,
        });
        assert!(out.contains("\"schema\": \"uhscm-lint/3\""));
        assert!(out.contains("\"lock-order\""));
        assert!(out.contains("\"blocking-under-lock\""));
        assert!(out.contains("\"taint-flow\""));
        assert!(out.contains("say \\\"no\\\"\\tto unwrap\\\\panic"));
        assert!(out.contains("\"allowed\":true"));
        assert!(out.contains("\"status\":\"ok\""));
        assert!(out.contains("\"kind\":\"index\""));
        assert!(out.contains("\"alloc_budget\""));
        assert!(out.contains("\"kind\":\"collect\""));
        assert!(out.contains("\"status\":\"under\""));
        assert!(out.contains("\"taint_budget\""));
        assert!(out.contains("\"kind\":\"cast\""));
        assert!(out.contains("\"tainted_fns\":6"));
        assert!(out.contains("\"source\":\"uhscm_serve::protocol::decode_request\""));
        assert!(out.contains("{\"analysis\":\"alloc-budget\",\"nanos\":800}"));
        // The obs trace parser is the reference JSON reader in this
        // workspace; structural validity is asserted end-to-end in
        // tests/lint_gate.rs. Here: balanced braces as a smoke check.
        assert_eq!(out.matches('{').count(), out.matches('}').count());
    }

    #[test]
    fn empty_findings_render_as_empty_array() {
        let out = render(&Report {
            files_scanned: 0,
            findings: &[],
            roots: &[],
            alloc_roots: &[],
            taint_roots: &[],
            timings: &[],
            errors: 0,
            warnings: 0,
            allowlisted: 0,
        });
        assert!(out.contains("\"findings\": [\n\n  ]"));
        assert_eq!(out.matches('{').count(), out.matches('}').count());
    }
}
