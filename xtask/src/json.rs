//! Hand-rolled JSON rendering for `lint --json` (std-only, no serde).
//!
//! Schema `uhscm-lint/1`:
//!
//! ```text
//! {
//!   "schema": "uhscm-lint/1",
//!   "files_scanned": N,
//!   "analyses": ["panic-reachability", "determinism", "dead-export"],
//!   "findings": [{rule, severity, path, line, message, allowed,
//!                 witness: [{fn, path, line}]}],
//!   "panic_budget": {
//!     "budget_path": "xtask/panic.budget",
//!     "roots": [{root, budget, reachable_fns, reachable_sites, status,
//!                sites: [{kind, path, line, fn, witness: [...]}]}]
//!   },
//!   "summary": {findings, errors, warnings, allowlisted}
//! }
//! ```
//!
//! `findings[*].allowed` entries are baselined in `xtask/lint.allow`;
//! `summary.errors` counts only non-allowed errors (the exit-code signal).

use crate::analysis::RootReport;
use crate::rules::{Finding, WitnessStep};

/// Escape a string for a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn witness_json(witness: &[WitnessStep]) -> String {
    let steps: Vec<String> = witness
        .iter()
        .map(|w| {
            format!(
                "{{\"fn\":\"{}\",\"path\":\"{}\",\"line\":{}}}",
                esc(&w.qualified),
                esc(&w.path),
                w.line
            )
        })
        .collect();
    format!("[{}]", steps.join(","))
}

/// Everything the report needs; `findings` carries an `allowed` flag per
/// finding (true = covered by `xtask/lint.allow`).
pub struct Report<'a> {
    pub files_scanned: usize,
    pub findings: &'a [(&'a Finding, bool)],
    pub roots: &'a [RootReport],
    pub errors: usize,
    pub warnings: usize,
    pub allowlisted: usize,
}

pub fn render(r: &Report) -> String {
    let mut out = String::from("{\n  \"schema\": \"uhscm-lint/1\",\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", r.files_scanned));
    out.push_str("  \"analyses\": [\"panic-reachability\", \"determinism\", \"dead-export\"],\n");

    let findings: Vec<String> = r
        .findings
        .iter()
        .map(|(f, allowed)| {
            format!(
                "    {{\"rule\":\"{}\",\"severity\":\"{}\",\"path\":\"{}\",\"line\":{},\
                 \"message\":\"{}\",\"allowed\":{},\"witness\":{}}}",
                esc(f.rule),
                f.severity.label(),
                esc(&f.path),
                f.line,
                esc(&f.message),
                allowed,
                witness_json(&f.witness)
            )
        })
        .collect();
    out.push_str(&format!("  \"findings\": [\n{}\n  ],\n", findings.join(",\n")));

    let roots: Vec<String> = r
        .roots
        .iter()
        .map(|root| {
            let sites: Vec<String> = root
                .sites
                .iter()
                .map(|s| {
                    format!(
                        "      {{\"kind\":\"{}\",\"path\":\"{}\",\"line\":{},\"fn\":\"{}\",\
                         \"witness\":{}}}",
                        s.kind.label(),
                        esc(&s.path),
                        s.line,
                        esc(&s.fn_qualified),
                        witness_json(&s.witness)
                    )
                })
                .collect();
            format!(
                "    {{\"root\":\"{}\",\"budget\":{},\"reachable_fns\":{},\
                 \"reachable_sites\":{},\"status\":\"{}\",\"sites\":[\n{}\n    ]}}",
                esc(root.root),
                root.budget.map(|b| b.to_string()).unwrap_or_else(|| "null".to_string()),
                root.reachable_fns,
                root.sites.len(),
                root.status.label(),
                sites.join(",\n")
            )
        })
        .collect();
    out.push_str(&format!(
        "  \"panic_budget\": {{\"budget_path\": \"xtask/panic.budget\", \"roots\": [\n{}\n  ]}},\n",
        roots.join(",\n")
    ));

    out.push_str(&format!(
        "  \"summary\": {{\"findings\": {}, \"errors\": {}, \"warnings\": {}, \"allowlisted\": {}}}\n}}\n",
        r.findings.len(),
        r.errors,
        r.warnings,
        r.allowlisted
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{BudgetStatus, RootReport, SiteReport};
    use crate::parser::PanicKind;
    use crate::rules::{Finding, Severity, WitnessStep};

    #[test]
    fn renders_escaped_valid_json() {
        let finding = Finding {
            rule: "no-unwrap",
            path: "crates/a/src/lib.rs".to_string(),
            line: 3,
            message: "say \"no\"\tto unwrap\\panic".to_string(),
            key: String::new(),
            severity: Severity::Error,
            witness: vec![WitnessStep {
                qualified: "uhscm_a::f".to_string(),
                path: "crates/a/src/lib.rs".to_string(),
                line: 1,
            }],
        };
        let roots = [RootReport {
            root: "uhscm_core::pipeline",
            budget: Some(2),
            reachable_fns: 5,
            sites: vec![SiteReport {
                kind: PanicKind::Index,
                path: "crates/a/src/lib.rs".to_string(),
                line: 3,
                fn_qualified: "uhscm_a::f".to_string(),
                witness: Vec::new(),
            }],
            status: BudgetStatus::Ok,
        }];
        let out = render(&Report {
            files_scanned: 7,
            findings: &[(&finding, true)],
            roots: &roots,
            errors: 0,
            warnings: 0,
            allowlisted: 1,
        });
        assert!(out.contains("\"schema\": \"uhscm-lint/1\""));
        assert!(out.contains("say \\\"no\\\"\\tto unwrap\\\\panic"));
        assert!(out.contains("\"allowed\":true"));
        assert!(out.contains("\"status\":\"ok\""));
        assert!(out.contains("\"kind\":\"index\""));
        // The obs trace parser is the reference JSON reader in this
        // workspace; structural validity is asserted end-to-end in
        // tests/lint_gate.rs. Here: balanced braces as a smoke check.
        assert_eq!(out.matches('{').count(), out.matches('}').count());
    }

    #[test]
    fn empty_findings_render_as_empty_array() {
        let out = render(&Report {
            files_scanned: 0,
            findings: &[],
            roots: &[],
            errors: 0,
            warnings: 0,
            allowlisted: 0,
        });
        assert!(out.contains("\"findings\": [\n\n  ]"));
        assert_eq!(out.matches('{').count(), out.matches('}').count());
    }
}
