//! `uhscm-xtask` — workspace automation, std-only.
//!
//! ```text
//! cargo run -p uhscm-xtask -- lint                    # check, exit 1 on findings
//! cargo run -p uhscm-xtask -- lint --write-baseline   # regenerate xtask/lint.allow
//! cargo run -p uhscm-xtask -- ci                      # fmt-check + lint + tier-1 tests
//! ```
//!
//! The `lint` command scans every `.rs` file in the workspace (skipping
//! `target/`) with textual rules tuned to this repo's invariants:
//!
//! * `no-unwrap`      — no `.unwrap()` / `.expect()` in non-test library code
//! * `unseeded-rng`   — no `thread_rng` / `from_entropy` / `rand::random` anywhere
//! * `raw-thread`     — no `thread::spawn`/`scope`/`Builder` outside `linalg::par`
//! * `obs-gated`      — no `*_unguarded` observability calls outside `crates/obs`
//! * `float-cmp`      — no exact `==` / `!=` on floats in numeric code
//! * `no-panic-macro` — no `panic!`/`todo!`/`unimplemented!`/`dbg!`/`println!`
//!   in library crates
//! * `panics-doc`     — `pub fn`s that assert must document `# Panics`
//!
//! Accepted findings live in `xtask/lint.allow` with mandatory one-line
//! justifications; stale entries fail the run. Diagnostics are
//! rustc-style `file:line` so editors can jump to them.
//!
//! The `ci` command chains the full tier-1 gate: `cargo fmt --check`, the
//! lint above (in-process), `cargo build --release` and `cargo test`.

mod allowlist;
mod lexer;
mod rules;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let write_baseline = args.iter().any(|a| a == "--write-baseline");
            if let Some(bad) = args[1..].iter().find(|a| a.as_str() != "--write-baseline") {
                eprintln!("uhscm-xtask: unknown lint flag `{bad}`");
                return usage();
            }
            ExitCode::from(lint(write_baseline))
        }
        Some("ci") => {
            if let Some(bad) = args.get(1) {
                eprintln!("uhscm-xtask: unknown ci flag `{bad}`");
                return usage();
            }
            ci()
        }
        _ => usage(),
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo run -p uhscm-xtask -- <lint [--write-baseline] | ci>\n\
         \n\
         commands:\n\
         \x20 lint                  scan workspace sources; exit 1 on findings\n\
         \x20 lint --write-baseline rewrite xtask/lint.allow from current findings,\n\
         \x20                       keeping existing justifications\n\
         \x20 ci                    fmt-check + lint + release build + tests\n\
         \x20                       (the full tier-1 gate, for scripts and CI)"
    );
    ExitCode::from(2)
}

/// The chained tier-1 gate: rustfmt check, the in-process linter, then the
/// ROADMAP's verify commands (`cargo build --release && cargo test`).
/// Stops at the first failing step.
fn ci() -> ExitCode {
    let root = workspace_root();
    println!("ci [1/4]: cargo fmt --all -- --check");
    if !run_step(
        "cargo fmt",
        std::process::Command::new("cargo")
            .args(["fmt", "--all", "--", "--check"])
            .current_dir(&root),
    ) {
        return ExitCode::from(1);
    }
    println!("ci [2/4]: lint");
    let lint_code = lint(false);
    if lint_code != 0 {
        return ExitCode::from(lint_code);
    }
    println!("ci [3/4]: cargo build --release");
    if !run_step(
        "cargo build",
        std::process::Command::new("cargo").args(["build", "--release"]).current_dir(&root),
    ) {
        return ExitCode::from(1);
    }
    println!("ci [4/4]: cargo test -q");
    if !run_step(
        "cargo test",
        std::process::Command::new("cargo").args(["test", "-q"]).current_dir(&root),
    ) {
        return ExitCode::from(1);
    }
    println!("ci: all steps passed");
    ExitCode::SUCCESS
}

/// Run one external ci step, reporting how it failed (if it did).
fn run_step(name: &str, cmd: &mut std::process::Command) -> bool {
    match cmd.status() {
        Ok(status) if status.success() => true,
        Ok(status) => {
            eprintln!("uhscm-xtask ci: step `{name}` failed ({status})");
            false
        }
        Err(e) => {
            eprintln!("uhscm-xtask ci: cannot run `{name}`: {e}");
            false
        }
    }
}

/// Workspace root = parent of the xtask crate (CARGO_MANIFEST_DIR).
fn workspace_root() -> PathBuf {
    let manifest =
        std::env::var("CARGO_MANIFEST_DIR").expect("CARGO_MANIFEST_DIR is always set under cargo");
    Path::new(&manifest)
        .parent()
        .expect("xtask sits one level below the workspace root")
        .to_path_buf()
}

/// Run the linter; returns the process exit code (0 = clean).
fn lint(write_baseline: bool) -> u8 {
    let root = workspace_root();
    let mut files = Vec::new();
    collect_rs(&root, &root, &mut files);
    files.sort();

    let mut findings = Vec::new();
    for rel in &files {
        let src = match std::fs::read_to_string(root.join(rel)) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("uhscm-xtask: cannot read {rel}: {e}");
                return 2;
            }
        };
        findings.extend(rules::check_file(rel, &lexer::scan(&src)));
    }
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));

    let allow_path = root.join("xtask/lint.allow");
    let allow_src = std::fs::read_to_string(&allow_path).unwrap_or_default();
    let allow = match allowlist::Allowlist::parse(&allow_src) {
        Ok(a) => a,
        Err(errors) => {
            for e in errors {
                eprintln!("error: {e}");
            }
            return 1;
        }
    };

    if write_baseline {
        let rendered = allowlist::render(&findings, &allow);
        if let Err(e) = std::fs::write(&allow_path, rendered) {
            eprintln!("uhscm-xtask: cannot write {}: {e}", allow_path.display());
            return 2;
        }
        println!(
            "wrote {} ({} findings baselined over {} files)",
            allow_path.display(),
            findings.len(),
            files.len()
        );
        return 0;
    }

    let mut failures = 0usize;
    let mut allowed = 0usize;
    for f in &findings {
        if allow.covers(f) {
            allowed += 1;
        } else {
            failures += 1;
            println!("{}:{}: error[{}]: {}", f.path, f.line, f.rule, f.message);
        }
    }
    for e in allow.stale() {
        failures += 1;
        println!(
            "xtask/lint.allow:{}: error[stale-allow]: entry for `{}` in {} no longer \
             matches any finding — remove it (was: {})",
            e.allow_line, e.rule, e.path, e.key
        );
    }

    println!(
        "uhscm-xtask lint: {} files scanned, {} findings ({} allowlisted, {} errors)",
        files.len(),
        findings.len(),
        allowed,
        failures
    );
    if failures > 0 {
        1
    } else {
        0
    }
}

/// Recursively collect workspace-relative paths of `.rs` files, skipping
/// build output and VCS metadata.
fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<String>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            collect_rs(root, &path, out);
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
}
