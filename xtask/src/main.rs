//! `uhscm-xtask` — workspace automation, std-only.
//!
//! ```text
//! cargo run -p uhscm-xtask -- lint                    # check, exit 1 on errors
//! cargo run -p uhscm-xtask -- lint --json             # machine-readable report
//! cargo run -p uhscm-xtask -- lint --only <pass>      # run a single semantic pass
//! cargo run -p uhscm-xtask -- lint --write-baseline   # regenerate xtask/lint.allow
//! cargo run -p uhscm-xtask -- lint --write-budget     # regenerate the budget files
//! cargo run -p uhscm-xtask -- ci                      # fmt-check + lint + tier-1 tests
//! ```
//!
//! The `lint` command scans every `.rs` file in the workspace (skipping
//! `target/`) with two layers of checks:
//!
//! **Textual rules** on the masked source (see [`rules`]):
//!
//! * `no-unwrap`      — no `.unwrap()` / `.expect()` in non-test library code
//! * `unseeded-rng`   — no `thread_rng` / `from_entropy` / `rand::random` anywhere
//! * `raw-thread`     — no `thread::spawn`/`scope`/`Builder` outside `linalg::par`
//! * `obs-gated`      — no `*_unguarded` observability calls outside `crates/obs`
//! * `float-cmp`      — no exact `==` / `!=` on floats in numeric code
//! * `no-panic-macro` — no `panic!`/`todo!`/`unimplemented!`/`dbg!`/`println!`
//!   in library crates
//! * `panics-doc`     — `pub fn`s that assert must document `# Panics`
//!
//! **Semantic passes** on the workspace call graph (see [`parser`],
//! [`callgraph`], [`analysis`]):
//!
//! * `panic-budget`   — panic sites reachable from hot-path roots, checked
//!   against `xtask/panic.budget`; growth fails, never allowlistable
//! * `hash-iter`      — `HashMap`/`HashSet` iteration reachable from a root
//! * `dead-export`    — `pub fn`s with no out-of-crate caller (warning)
//! * `lock-order`     — acquired-while-held cycles and same-lock re-entry;
//!   never allowlistable
//! * `lock-blocking`  — blocking I/O / sleeps / joins reachable while a
//!   guard is live (allowlistable: intentional `Condvar::wait`)
//! * `alloc-budget`   — allocation sites reachable from hot-path roots,
//!   checked against `xtask/alloc.budget`; growth fails, never
//!   allowlistable
//! * `taint-budget`   — untrusted wire/CLI/bundle values flowing to
//!   index/cast/arith/alloc-size sinks, checked against
//!   `xtask/taint.budget`; growth fails, never allowlistable
//!
//! Accepted findings live in `xtask/lint.allow` with mandatory one-line
//! justifications; stale, duplicate or unknown-rule entries fail the run.
//! Diagnostics are rustc-style `file:line` so editors can jump to them;
//! `--json` emits the `uhscm-lint/3` report (schema in [`json`]) on stdout
//! with diagnostics moved to stderr. `--only <pass>` (pass names as in
//! [`analysis::PASS_NAMES`]) runs one semantic pass for fast iteration;
//! `ci` always runs the full set.
//!
//! The `ci` command chains the full tier-1 gate: `cargo fmt --check`, the
//! lint above (in-process, writing `results/lint.json`), `cargo build
//! --release`, `cargo test`, and a cross-process smoke of the online
//! retrieval service (start → query → drain, see [`smoke`]).

mod allowlist;
mod analysis;
mod callgraph;
mod json;
mod lexer;
mod parser;
mod rules;
mod smoke;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let mut opts = LintOpts {
                write_baseline: false,
                write_budget: false,
                json_stdout: false,
                json_file: None,
                bench_file: None,
                only: None,
            };
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--write-baseline" => opts.write_baseline = true,
                    "--write-budget" => opts.write_budget = true,
                    "--json" => opts.json_stdout = true,
                    "--only" => {
                        let Some(pass) = args.get(i + 1) else {
                            eprintln!("uhscm-xtask: --only needs a pass name");
                            return usage();
                        };
                        if !analysis::PASS_NAMES.contains(&pass.as_str()) {
                            eprintln!(
                                "uhscm-xtask: unknown pass `{pass}` (expected one of: {})",
                                analysis::PASS_NAMES.join(", ")
                            );
                            return usage();
                        }
                        opts.only = Some(pass.clone());
                        i += 1;
                    }
                    bad => {
                        eprintln!("uhscm-xtask: unknown lint flag `{bad}`");
                        return usage();
                    }
                }
                i += 1;
            }
            if opts.only.is_some() && (opts.write_budget || opts.write_baseline) {
                eprintln!("uhscm-xtask: --only cannot be combined with --write-*: baselines and budgets need the full pass set");
                return usage();
            }
            ExitCode::from(lint(&opts))
        }
        Some("ci") => {
            if let Some(bad) = args.get(1) {
                eprintln!("uhscm-xtask: unknown ci flag `{bad}`");
                return usage();
            }
            ci()
        }
        _ => usage(),
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo run -p uhscm-xtask -- <lint [flags] | ci>\n\
         \n\
         commands:\n\
         \x20 lint                  scan workspace sources; exit 1 on errors\n\
         \x20 lint --json           print the uhscm-lint/3 JSON report on stdout\n\
         \x20                       (diagnostics go to stderr)\n\
         \x20 lint --only <pass>    run a single semantic pass (panic-reachability,\n\
         \x20                       determinism, dead-export, lock-order,\n\
         \x20                       blocking-under-lock, alloc-budget, taint-flow)\n\
         \x20 lint --write-baseline rewrite xtask/lint.allow from current findings,\n\
         \x20                       keeping existing justifications\n\
         \x20 lint --write-budget   rewrite xtask/panic.budget, xtask/alloc.budget\n\
         \x20                       and xtask/taint.budget from the current counts\n\
         \x20 ci                    fmt-check + lint (writes results/lint.json and\n\
         \x20                       BENCH_lint.json) + release build + tests +\n\
         \x20                       kernel-regression gate + serve smoke + scale\n\
         \x20                       smoke (the full tier-1 gate)"
    );
    ExitCode::from(2)
}

/// The chained tier-1 gate: rustfmt check, the in-process linter (which
/// also writes `results/lint.json`), the ROADMAP's verify commands
/// (`cargo build --release && cargo test`), the kernel-regression gate
/// (tuned kernels must stay bitwise identical to — and no slower than —
/// their naive references), then the serve and scale smokes. Stops at the
/// first failing step.
fn ci() -> ExitCode {
    let root = workspace_root();
    println!("ci [1/7]: cargo fmt --all -- --check");
    if !run_step(
        "cargo fmt",
        std::process::Command::new("cargo")
            .args(["fmt", "--all", "--", "--check"])
            .current_dir(&root),
    ) {
        return ExitCode::from(1);
    }
    println!("ci [2/7]: lint (report: results/lint.json, timings: BENCH_lint.json)");
    let opts = LintOpts {
        write_baseline: false,
        write_budget: false,
        json_stdout: false,
        json_file: Some(root.join("results/lint.json")),
        bench_file: Some(root.join("BENCH_lint.json")),
        only: None,
    };
    let lint_code = lint(&opts);
    if lint_code != 0 {
        return ExitCode::from(lint_code);
    }
    println!("ci [3/7]: cargo build --release");
    if !run_step(
        "cargo build",
        std::process::Command::new("cargo").args(["build", "--release"]).current_dir(&root),
    ) {
        return ExitCode::from(1);
    }
    println!("ci [4/7]: cargo test -q");
    if !run_step(
        "cargo test",
        std::process::Command::new("cargo").args(["test", "-q"]).current_dir(&root),
    ) {
        return ExitCode::from(1);
    }
    println!("ci [5/7]: kernel regression (tuned vs naive, bitwise + throughput floor)");
    if !run_step(
        "kernel_regression",
        std::process::Command::new("cargo")
            .args(["run", "--release", "-p", "uhscm-bench", "--bin", "kernel_regression"])
            .current_dir(&root),
    ) {
        return ExitCode::from(1);
    }
    println!("ci [6/7]: serve smoke (start -> query -> drain)");
    if let Err(msg) = smoke::serve_smoke(&root) {
        eprintln!("ci: serve smoke failed: {msg}");
        return ExitCode::from(1);
    }
    println!("ci [7/7]: scale smoke (stream-build 10k store -> info -> verify vs in-memory)");
    if let Err(msg) = smoke::scale_smoke(&root) {
        eprintln!("ci: scale smoke failed: {msg}");
        return ExitCode::from(1);
    }
    println!("ci: all steps passed");
    ExitCode::SUCCESS
}

/// Run one external ci step, reporting how it failed (if it did).
fn run_step(name: &str, cmd: &mut std::process::Command) -> bool {
    match cmd.status() {
        Ok(status) if status.success() => true,
        Ok(status) => {
            eprintln!("uhscm-xtask ci: step `{name}` failed ({status})");
            false
        }
        Err(e) => {
            eprintln!("uhscm-xtask ci: cannot run `{name}`: {e}");
            false
        }
    }
}

/// Workspace root = parent of the xtask crate (CARGO_MANIFEST_DIR).
fn workspace_root() -> PathBuf {
    let manifest =
        std::env::var("CARGO_MANIFEST_DIR").expect("CARGO_MANIFEST_DIR is always set under cargo");
    Path::new(&manifest)
        .parent()
        .expect("xtask sits one level below the workspace root")
        .to_path_buf()
}

struct LintOpts {
    write_baseline: bool,
    write_budget: bool,
    /// Print the JSON report on stdout; diagnostics move to stderr.
    json_stdout: bool,
    /// Also write the JSON report here (used by `ci`).
    json_file: Option<PathBuf>,
    /// Write per-pass wall-times here (used by `ci` → `BENCH_lint.json`).
    bench_file: Option<PathBuf>,
    /// Run only this semantic pass (a name from [`analysis::PASS_NAMES`]).
    only: Option<String>,
}

/// Run the linter; returns the process exit code (0 = clean).
fn lint(opts: &LintOpts) -> u8 {
    let root = workspace_root();
    let mut files = Vec::new();
    collect_rs(&root, &root, &mut files);
    files.sort();

    // Diagnostics go to stderr when stdout carries the JSON report.
    macro_rules! diag {
        ($($arg:tt)*) => {
            if opts.json_stdout { eprintln!($($arg)*) } else { println!($($arg)*) }
        };
    }

    let mut sources: Vec<(String, String)> = Vec::new();
    for rel in &files {
        match std::fs::read_to_string(root.join(rel)) {
            Ok(s) => sources.push((rel.clone(), s)),
            Err(e) => {
                eprintln!("uhscm-xtask: cannot read {rel}: {e}");
                return 2;
            }
        }
    }

    // Layer 1: textual rules.
    let mut findings = Vec::new();
    let ws = callgraph::Workspace::from_sources(&sources);
    for file in &ws.files {
        findings.extend(rules::check_file(&file.path, &file.masked));
    }

    // Layer 2: semantic passes over the call graph.
    let graph = callgraph::Graph::build(&ws);
    let budget_path = root.join("xtask/panic.budget");
    let budget_src = std::fs::read_to_string(&budget_path).ok();
    let alloc_budget_path = root.join("xtask/alloc.budget");
    let alloc_budget_src = std::fs::read_to_string(&alloc_budget_path).ok();
    let taint_budget_path = root.join("xtask/taint.budget");
    let taint_budget_src = std::fs::read_to_string(&taint_budget_path).ok();
    let analysis = analysis::run(
        &ws,
        &graph,
        budget_src.as_deref(),
        alloc_budget_src.as_deref(),
        taint_budget_src.as_deref(),
        opts.only.as_deref(),
    );

    if opts.write_budget {
        let rendered = analysis::render_budget(&analysis.roots);
        if let Err(e) = std::fs::write(&budget_path, rendered) {
            eprintln!("uhscm-xtask: cannot write {}: {e}", budget_path.display());
            return 2;
        }
        diag!(
            "wrote {} ({} roots, {} reachable panic sites)",
            budget_path.display(),
            analysis.roots.len(),
            analysis.roots.iter().map(|r| r.sites.len()).sum::<usize>()
        );
        let rendered = analysis::render_alloc_budget(&analysis.alloc_roots);
        if let Err(e) = std::fs::write(&alloc_budget_path, rendered) {
            eprintln!("uhscm-xtask: cannot write {}: {e}", alloc_budget_path.display());
            return 2;
        }
        diag!(
            "wrote {} ({} roots, {} reachable allocation sites)",
            alloc_budget_path.display(),
            analysis.alloc_roots.len(),
            analysis.alloc_roots.iter().map(|r| r.sites.len()).sum::<usize>()
        );
        let rendered = analysis::render_taint_budget(&analysis.taint_roots);
        if let Err(e) = std::fs::write(&taint_budget_path, rendered) {
            eprintln!("uhscm-xtask: cannot write {}: {e}", taint_budget_path.display());
            return 2;
        }
        diag!(
            "wrote {} ({} source groups, {} tainted sink sites)",
            taint_budget_path.display(),
            analysis.taint_roots.len(),
            analysis.taint_roots.iter().map(|r| r.sites.len()).sum::<usize>()
        );
        return 0;
    }

    findings.extend(analysis.findings);
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));

    let allow_path = root.join("xtask/lint.allow");
    let allow_src = std::fs::read_to_string(&allow_path).unwrap_or_default();
    let allow = match allowlist::Allowlist::parse(&allow_src, rules::ALL_RULES) {
        Ok(a) => a,
        Err(errors) => {
            for e in errors {
                eprintln!("error: {e}");
            }
            return 1;
        }
    };

    if opts.write_baseline {
        // Budget and lock-order findings are never allowlistable — keep
        // them out of the baseline (budgets are re-baselined via
        // --write-budget; ordering cycles must be fixed).
        let baselinable: Vec<rules::Finding> =
            findings.into_iter().filter(|f| rules::allowlistable(f.rule)).collect();
        let rendered = allowlist::render(&baselinable, &allow);
        if let Err(e) = std::fs::write(&allow_path, rendered) {
            eprintln!("uhscm-xtask: cannot write {}: {e}", allow_path.display());
            return 2;
        }
        println!(
            "wrote {} ({} findings baselined over {} files)",
            allow_path.display(),
            baselinable.len(),
            files.len()
        );
        return 0;
    }

    let mut failures = 0usize;
    let mut warnings = 0usize;
    let mut allowed = 0usize;
    let mut classified: Vec<(&rules::Finding, bool)> = Vec::new();
    for f in &findings {
        let is_allowed = rules::allowlistable(f.rule) && allow.covers(f);
        classified.push((f, is_allowed));
        if is_allowed {
            allowed += 1;
            continue;
        }
        diag!("{}:{}: {}[{}]: {}", f.path, f.line, f.severity.label(), f.rule, f.message);
        for (i, step) in f.witness.iter().enumerate() {
            diag!("    {}{} ({}:{})", "  ".repeat(i), step.qualified, step.path, step.line);
        }
        match f.severity {
            rules::Severity::Error => failures += 1,
            rules::Severity::Warning => warnings += 1,
        }
    }
    for e in allow.stale() {
        failures += 1;
        diag!(
            "xtask/lint.allow:{}: error[stale-allow]: entry for `{}` in {} no longer \
             matches any finding — remove it (was: {})",
            e.allow_line,
            e.rule,
            e.path,
            e.key
        );
    }

    let report = json::render(&json::Report {
        files_scanned: files.len(),
        findings: &classified,
        roots: &analysis.roots,
        alloc_roots: &analysis.alloc_roots,
        taint_roots: &analysis.taint_roots,
        timings: &analysis.timings,
        errors: failures,
        warnings,
        allowlisted: allowed,
    });
    if opts.json_stdout {
        print!("{report}");
    }
    if let Some(path) = &opts.json_file {
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(path, &report) {
            eprintln!("uhscm-xtask: cannot write {}: {e}", path.display());
            return 2;
        }
    }
    if let Some(path) = &opts.bench_file {
        let passes: Vec<String> = analysis
            .timings
            .iter()
            .map(|(name, nanos)| {
                format!(
                    "    {{\"analysis\": \"{name}\", \"nanos\": {nanos}, \"millis\": {:.3}}}",
                    *nanos as f64 / 1e6
                )
            })
            .collect();
        let bench = format!(
            "{{\n  \"schema\": \"uhscm-bench-lint/1\",\n  \"files_scanned\": {},\n  \
             \"passes\": [\n{}\n  ]\n}}\n",
            files.len(),
            passes.join(",\n")
        );
        if let Err(e) = std::fs::write(path, bench) {
            eprintln!("uhscm-xtask: cannot write {}: {e}", path.display());
            return 2;
        }
    }

    diag!(
        "uhscm-xtask lint: {} files scanned, {} findings ({} allowlisted, {} warnings, {} errors)",
        files.len(),
        findings.len(),
        allowed,
        warnings,
        failures
    );
    if failures > 0 {
        1
    } else {
        0
    }
}

/// Recursively collect workspace-relative paths of `.rs` files, skipping
/// build output and VCS metadata.
fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<String>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            collect_rs(root, &path, out);
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
}
