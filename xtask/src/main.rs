//! `uhscm-xtask` — workspace automation, std-only.
//!
//! ```text
//! cargo run -p uhscm-xtask -- lint                    # check, exit 1 on findings
//! cargo run -p uhscm-xtask -- lint --write-baseline   # regenerate xtask/lint.allow
//! ```
//!
//! The `lint` command scans every `.rs` file in the workspace (skipping
//! `target/`) with textual rules tuned to this repo's invariants:
//!
//! * `no-unwrap`      — no `.unwrap()` / `.expect()` in non-test library code
//! * `unseeded-rng`   — no `thread_rng` / `from_entropy` / `rand::random` anywhere
//! * `raw-thread`     — no `thread::spawn`/`scope`/`Builder` outside `linalg::par`
//! * `float-cmp`      — no exact `==` / `!=` on floats in numeric code
//! * `no-panic-macro` — no `panic!`/`todo!`/`unimplemented!`/`dbg!`/`println!`
//!   in library crates
//! * `panics-doc`     — `pub fn`s that assert must document `# Panics`
//!
//! Accepted findings live in `xtask/lint.allow` with mandatory one-line
//! justifications; stale entries fail the run. Diagnostics are
//! rustc-style `file:line` so editors can jump to them.

mod allowlist;
mod lexer;
mod rules;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let write_baseline = args.iter().any(|a| a == "--write-baseline");
            if let Some(bad) = args[1..].iter().find(|a| a.as_str() != "--write-baseline") {
                eprintln!("uhscm-xtask: unknown lint flag `{bad}`");
                return usage();
            }
            lint(write_baseline)
        }
        _ => usage(),
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo run -p uhscm-xtask -- lint [--write-baseline]\n\
         \n\
         commands:\n\
         \x20 lint                  scan workspace sources; exit 1 on findings\n\
         \x20 lint --write-baseline rewrite xtask/lint.allow from current findings,\n\
         \x20                       keeping existing justifications"
    );
    ExitCode::from(2)
}

/// Workspace root = parent of the xtask crate (CARGO_MANIFEST_DIR).
fn workspace_root() -> PathBuf {
    let manifest =
        std::env::var("CARGO_MANIFEST_DIR").expect("CARGO_MANIFEST_DIR is always set under cargo");
    Path::new(&manifest)
        .parent()
        .expect("xtask sits one level below the workspace root")
        .to_path_buf()
}

fn lint(write_baseline: bool) -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    collect_rs(&root, &root, &mut files);
    files.sort();

    let mut findings = Vec::new();
    for rel in &files {
        let src = match std::fs::read_to_string(root.join(rel)) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("uhscm-xtask: cannot read {rel}: {e}");
                return ExitCode::from(2);
            }
        };
        findings.extend(rules::check_file(rel, &lexer::scan(&src)));
    }
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));

    let allow_path = root.join("xtask/lint.allow");
    let allow_src = std::fs::read_to_string(&allow_path).unwrap_or_default();
    let allow = match allowlist::Allowlist::parse(&allow_src) {
        Ok(a) => a,
        Err(errors) => {
            for e in errors {
                eprintln!("error: {e}");
            }
            return ExitCode::from(1);
        }
    };

    if write_baseline {
        let rendered = allowlist::render(&findings, &allow);
        if let Err(e) = std::fs::write(&allow_path, rendered) {
            eprintln!("uhscm-xtask: cannot write {}: {e}", allow_path.display());
            return ExitCode::from(2);
        }
        println!(
            "wrote {} ({} findings baselined over {} files)",
            allow_path.display(),
            findings.len(),
            files.len()
        );
        return ExitCode::SUCCESS;
    }

    let mut failures = 0usize;
    let mut allowed = 0usize;
    for f in &findings {
        if allow.covers(f) {
            allowed += 1;
        } else {
            failures += 1;
            println!("{}:{}: error[{}]: {}", f.path, f.line, f.rule, f.message);
        }
    }
    for e in allow.stale() {
        failures += 1;
        println!(
            "xtask/lint.allow:{}: error[stale-allow]: entry for `{}` in {} no longer \
             matches any finding — remove it (was: {})",
            e.allow_line, e.rule, e.path, e.key
        );
    }

    println!(
        "uhscm-xtask lint: {} files scanned, {} findings ({} allowlisted, {} errors)",
        files.len(),
        findings.len(),
        allowed,
        failures
    );
    if failures > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Recursively collect workspace-relative paths of `.rs` files, skipping
/// build output and VCS metadata.
fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<String>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            collect_rs(root, &path, out);
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
}
