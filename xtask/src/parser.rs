//! A lightweight Rust item parser on top of the masking lexer.
//!
//! The semantic passes (see [`crate::analysis`]) need more than masked
//! lines: they need to know which functions exist, what each one calls,
//! and where its intrinsic panic sites are. This module extracts exactly
//! that — no types, no full grammar — from the token stream of a masked
//! file:
//!
//! * `fn` items with their inline-module path, enclosing `impl` type,
//!   visibility and `#[cfg(test)]` status;
//! * call expressions (`foo(`, `a::b::foo(`, `Self::foo(`), method calls
//!   (`.foo(`, turbofish included) and macro invocations (`foo!(`);
//! * `use` imports, flattened to `(bound name, full path)` pairs;
//! * intrinsic **panic sites**: `.unwrap()` / `.expect(`, panicking
//!   macros, slice/collection indexing `x[..]`, and integer `/` / `%`
//!   with a non-literal divisor;
//! * `HashMap`/`HashSet` bindings (fields and `let`s) plus iteration
//!   calls over them, for the determinism audit;
//! * lock bindings (`Mutex`/`RwLock`/`Condvar` fields, statics, lets and
//!   params), lock acquisitions with their guard bindings, blocking
//!   operations (socket I/O, `thread::sleep`, channel `recv`, thread
//!   `join`, `Condvar::wait*`) and allocation sites, for the concurrency
//!   and allocation-budget passes;
//! * taint plumbing for [`crate::analysis::taint`]: signature parameter
//!   names, name-level dataflow binds (`let` initializers, `match`-arm
//!   destructuring against the scrutinee, `for pat in expr`), and **sink
//!   sites** — indexing operands, narrowing `as` casts, raw `+`/`*`/`-`
//!   integer arithmetic (checked/saturating/wrapping forms are method
//!   calls and never produce a raw operator), and allocation-size
//!   positions (`with_capacity`, `reserve`, `vec![..; n]`) — each with
//!   the identifiers that feed it.
//!
//! Known over-approximations are deliberate (DESIGN.md §11, §13): a
//! closure's body is attributed to its enclosing function, any `[` after a
//! value token counts as indexing, a let-bound guard is assumed live to
//! the end of the function (or an explicit `drop`), and call resolution is
//! left entirely to [`crate::callgraph`].

use crate::lexer::MaskedFile;
use crate::rules;
use std::collections::{BTreeMap, BTreeSet};

/// One lexical token of the masked source.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    Ident(String),
    /// Numeric literal (integer or float, suffix included).
    Num(String),
    /// The path separator `::`.
    ColonColon,
    Punct(char),
}

/// A token plus its position (0-based line, byte column in the line).
#[derive(Debug, Clone)]
pub struct Token {
    pub tok: Tok,
    pub line: usize,
    pub col: usize,
}

/// Why a line can panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PanicKind {
    /// `.unwrap()` on Option/Result.
    Unwrap,
    /// `.expect(..)` on Option/Result.
    Expect,
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
    PanicMacro,
    /// `assert!` / `assert_eq!` / `assert_ne!`.
    Assert,
    /// Indexing `x[..]` (slice, Vec, Matrix, map — all can panic).
    Index,
    /// Integer `/` or `%` with a divisor not proven non-zero.
    IntDiv,
}

impl PanicKind {
    pub fn label(self) -> &'static str {
        match self {
            PanicKind::Unwrap => "unwrap",
            PanicKind::Expect => "expect",
            PanicKind::PanicMacro => "panic-macro",
            PanicKind::Assert => "assert",
            PanicKind::Index => "index",
            PanicKind::IntDiv => "int-div",
        }
    }
}

/// An intrinsic panic site inside one function body (0-based line).
#[derive(Debug, Clone)]
pub struct PanicSite {
    pub kind: PanicKind,
    pub line: usize,
}

/// A call expression: path segments (`["a", "b", "f"]` for `a::b::f(..)`,
/// one segment for `f(..)` or `.f(..)`) and the 0-based line.
#[derive(Debug, Clone)]
pub struct Call {
    pub segments: Vec<String>,
    pub line: usize,
    /// Identifiers appearing in the argument list (bounded scan), used to
    /// map guard-returning calls like `recover(&self.state)` back to the
    /// lock binding they acquire, and to spot `drop(guard)`.
    pub args: Vec<String>,
    /// `Some(name)` when the call result is let-bound (`let g = f(..)`,
    /// `if let Some(w) = f(..)`); the innermost pattern identifier.
    pub bound: Option<String>,
    /// `Some(name)` for method calls whose receiver is a bare identifier
    /// (`recv.f(..)`); `None` for free calls, macros and chained
    /// receivers. Taint treats the receiver as an extra argument.
    pub recv: Option<String>,
}

/// Iteration over a `HashMap`/`HashSet` binding (determinism audit input).
#[derive(Debug, Clone)]
pub struct HashIter {
    pub binding: String,
    /// `iter` / `keys` / `values` / `into_iter` / `drain` / `for-in`.
    pub method: String,
    pub line: usize,
}

/// Which lock primitive a binding was declared with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LockClass {
    Mutex,
    RwLock,
    Condvar,
}

/// How a guard is obtained at an acquisition site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LockKind {
    /// `m.lock()` on a `Mutex` binding.
    MutexLock,
    /// `l.read()` on a `RwLock` binding.
    RwRead,
    /// `l.write()` on a `RwLock` binding.
    RwWrite,
}

impl LockKind {
    pub fn label(self) -> &'static str {
        match self {
            LockKind::MutexLock => "lock",
            LockKind::RwRead => "read",
            LockKind::RwWrite => "write",
        }
    }
}

/// A lock acquisition inside one function body (0-based line).
#[derive(Debug, Clone)]
pub struct LockSite {
    /// The lock binding acquired (`state` in `self.state.lock()`).
    pub binding: String,
    pub kind: LockKind,
    pub line: usize,
    /// `Some(name)` when the guard is let-bound (`let g = m.lock()`);
    /// `None` for a temporary that dies within its own statement.
    pub guard: Option<String>,
}

/// A potentially blocking operation (0-based line).
#[derive(Debug, Clone)]
pub struct BlockingSite {
    /// Operation label (`write_all`, `thread::sleep`, `Condvar::wait`, ..).
    pub op: String,
    pub line: usize,
    /// `Condvar::wait*` atomically releases its guard, so the
    /// blocking-under-lock pass treats it as intentional-but-reportable.
    pub condvar_wait: bool,
}

/// Why a line allocates (the curated hot-path allocation vocabulary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AllocKind {
    VecNew,
    WithCapacity,
    VecMacro,
    Clone,
    ToVec,
    Collect,
    FormatMacro,
    StringFrom,
    BoxNew,
}

impl AllocKind {
    pub fn label(self) -> &'static str {
        match self {
            AllocKind::VecNew => "vec-new",
            AllocKind::WithCapacity => "with-capacity",
            AllocKind::VecMacro => "vec-macro",
            AllocKind::Clone => "clone",
            AllocKind::ToVec => "to-vec",
            AllocKind::Collect => "collect",
            AllocKind::FormatMacro => "format",
            AllocKind::StringFrom => "string-from",
            AllocKind::BoxNew => "box-new",
        }
    }
}

/// An allocation site inside one function body (0-based line).
#[derive(Debug, Clone)]
pub struct AllocSite {
    pub kind: AllocKind,
    pub line: usize,
}

/// What an untrusted value must not reach unchecked (taint sinks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SinkKind {
    /// Slice/array/map indexing — the index expression's operands.
    Index,
    /// Narrowing `as` cast to an integer type (float contexts excluded,
    /// same discipline as the int-div panic site).
    Cast,
    /// Raw `+`/`*`/`-` on integer operands; `checked_*`/`saturating_*`/
    /// `wrapping_*` are method calls and never produce a raw operator.
    Arith,
    /// Allocation-size position: `with_capacity(n)`, `reserve(n)`,
    /// `vec![x; n]`.
    AllocSize,
}

impl SinkKind {
    pub fn label(self) -> &'static str {
        match self {
            SinkKind::Index => "index",
            SinkKind::Cast => "cast",
            SinkKind::Arith => "arith",
            SinkKind::AllocSize => "alloc-size",
        }
    }
}

/// A taint sink inside one function body (0-based line) plus the
/// identifiers feeding it (bounded scans, [`taint_ident`]-filtered).
#[derive(Debug, Clone)]
pub struct SinkSite {
    pub kind: SinkKind,
    pub line: usize,
    pub operands: Vec<String>,
}

/// A name-level dataflow bind: if any identifier on the right is tainted,
/// every bound name on the left becomes tainted. Produced by `let`
/// initializers, `match`-arm patterns (rhs = the scrutinee) and
/// `for pat in expr` loops.
#[derive(Debug, Clone)]
pub struct TaintBind {
    pub bound: Vec<String>,
    pub rhs: Vec<String>,
    pub line: usize,
}

/// One `fn` item and everything extracted from its body.
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    /// Inline `mod` path within the file (file-level modules are derived
    /// from the path by the call graph).
    pub module: Vec<String>,
    /// `Some(type)` when declared inside `impl Type` / `impl Trait for Type`.
    pub impl_type: Option<String>,
    /// Whether the enclosing impl is a trait impl (`impl T for U`).
    pub trait_impl: bool,
    pub is_pub: bool,
    /// 0-based line of the `fn` keyword.
    pub line: usize,
    pub in_test: bool,
    /// Free/path calls (`f(`, `a::f(`).
    pub calls: Vec<Call>,
    /// Method calls (`.f(`), single-segment.
    pub method_calls: Vec<Call>,
    /// Macro invocations (`f!(..)`), single-segment.
    pub macros: Vec<Call>,
    pub panic_sites: Vec<PanicSite>,
    pub hash_iters: Vec<HashIter>,
    /// 0-based line of the body's closing `}` (used for guard-extent
    /// scans; equals `line` until the body closes).
    pub end_line: usize,
    /// Whether the signature mentions a `*Guard` type: acquisitions inside
    /// escape to the caller instead of dying in this body.
    pub ret_guard: bool,
    pub lock_sites: Vec<LockSite>,
    pub blocking_sites: Vec<BlockingSite>,
    pub alloc_sites: Vec<AllocSite>,
    /// Signature parameter names (`self` excluded), in declaration order.
    pub params: Vec<String>,
    /// Name-level dataflow binds for taint propagation.
    pub binds: Vec<TaintBind>,
    /// Taint sinks with their feeding identifiers.
    pub sinks: Vec<SinkSite>,
}

/// Everything extracted from one source file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// `use` imports as `(bound name, full segment path)`.
    pub uses: Vec<(String, Vec<String>)>,
    pub fns: Vec<FnItem>,
    /// Names bound to a `HashMap`/`HashSet` (struct fields and lets).
    pub hash_bindings: BTreeSet<String>,
    /// Names bound to a lock primitive (fields, statics, lets, params).
    pub lock_bindings: BTreeMap<String, LockClass>,
    /// Names bound to a `TcpStream`/`TcpListener`.
    pub net_bindings: BTreeSet<String>,
}

/// Tokenize masked lines. Strings/comments are already blanked, so only
/// code tokens survive; lifetimes and masked literals are skipped.
pub fn tokenize(masked_lines: &[String]) -> Vec<Token> {
    let mut out = Vec::new();
    for (lineno, line) in masked_lines.iter().enumerate() {
        let bytes = line.as_bytes();
        let chars: Vec<char> = line.chars().collect();
        // The masked text is ASCII wherever it matters (non-ASCII source
        // chars are either masked or identifiers we can treat bytewise);
        // iterate chars but track byte columns for operand extraction.
        let mut byte_of = Vec::with_capacity(chars.len() + 1);
        {
            let mut b = 0;
            for c in &chars {
                byte_of.push(b);
                b += c.len_utf8();
            }
            byte_of.push(bytes.len());
        }
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            let col = byte_of[i];
            if c.is_alphabetic() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let ident: String = chars[start..i].iter().collect();
                out.push(Token { tok: Tok::Ident(ident), line: lineno, col });
            } else if c.is_ascii_digit() {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                // Fractional part: `.` followed by a digit (not `..` or a
                // method call on a literal).
                if i + 1 < chars.len() && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                    i += 1;
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                }
                let num: String = chars[start..i].iter().collect();
                out.push(Token { tok: Tok::Num(num), line: lineno, col });
            } else if c == '\'' {
                // Lifetime (`'a`) or a masked char literal (`' '`): skip.
                if i + 1 < chars.len() && (chars[i + 1].is_alphabetic() || chars[i + 1] == '_') {
                    i += 1;
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                } else {
                    // Masked char literal: skip to the closing quote.
                    let mut j = i + 1;
                    while j < chars.len() && chars[j] != '\'' {
                        j += 1;
                    }
                    i = (j + 1).min(chars.len());
                }
            } else if c == ':' && chars.get(i + 1) == Some(&':') {
                out.push(Token { tok: Tok::ColonColon, line: lineno, col });
                i += 2;
            } else {
                out.push(Token { tok: Tok::Punct(c), line: lineno, col });
                i += 1;
            }
        }
    }
    out
}

/// Keywords that look like calls when followed by `(` but are not.
const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "break", "continue", "in", "as", "move",
    "ref", "mut", "let", "else", "fn", "impl", "struct", "enum", "trait", "type", "use", "mod",
    "pub", "where", "unsafe", "async", "await", "dyn", "const", "static", "true", "false", "yield",
];

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
const ASSERT_MACROS: &[&str] = &["assert", "assert_eq", "assert_ne"];
const ITER_METHODS: &[&str] = &["iter", "keys", "values", "into_iter", "drain", "iter_mut"];

enum ScopeKind {
    Mod,
    Impl,
    Fn,
    Other,
}

struct Scope {
    kind: ScopeKind,
    /// Brace depth *before* the opening `{`; the scope pops when depth
    /// returns to this value.
    open_depth: i64,
}

enum Pending {
    Mod(String),
    Impl { type_name: String, trait_impl: bool },
    Fn { name: String, is_pub: bool, line: usize },
}

/// A `.lock()`/`.read()`/`.write()`/`.wait*()` call awaiting receiver
/// classification (the binding may be declared later in the file).
struct LockCand {
    recv: String,
    method: String,
    line: usize,
    guard: Option<String>,
}

/// Method calls that block regardless of receiver type (socket/file I/O,
/// channel receives). Over-approximate by design: a `flush` on an
/// in-memory writer still counts (DESIGN.md §13).
const BLOCKING_METHODS: &[&str] =
    &["write_all", "read_exact", "read_to_end", "flush", "accept", "recv", "recv_timeout"];

/// Parse one masked file into items, calls and panic sites.
pub fn parse(file: &MaskedFile) -> ParsedFile {
    let toks = tokenize(&file.masked_lines);
    let mut out = ParsedFile::default();
    // Raw hash-iteration candidates; filtered against `hash_bindings`
    // once the whole file has been scanned (fields may be declared after
    // the methods that iterate them).
    let mut raw_iters: Vec<(usize, HashIter)> = Vec::new(); // (fn index, site)
                                                            // Lock-method candidates, filtered against `lock_bindings` /
                                                            // `net_bindings` once the whole file has been scanned.
    let mut raw_locks: Vec<(usize, LockCand)> = Vec::new();

    let mut scopes: Vec<Scope> = Vec::new();
    let mut mod_path: Vec<String> = Vec::new();
    let mut impl_ctx: Vec<(String, bool)> = Vec::new();
    let mut fn_stack: Vec<usize> = Vec::new();
    let mut pending: Option<Pending> = None;
    // Set while a `Pending::Fn` signature mentions a `*Guard` type.
    let mut pending_ret_guard = false;
    // Parameter names collected while a `Pending::Fn` signature is open.
    let mut pending_params: Vec<String> = Vec::new();
    // A `match` whose arm block opens at token index `.0`, with the
    // scrutinee identifiers `.1`; promoted onto `match_stack` when the
    // opening `{` is reached.
    let mut pending_match: Option<(usize, Vec<String>)> = None;
    // Open `match` blocks: (open brace depth, scrutinee identifiers).
    let mut match_stack: Vec<(i64, Vec<String>)> = Vec::new();
    let mut depth = 0i64;
    let mut paren_depth = 0i64;

    let ident = |i: usize| -> Option<&str> {
        match toks.get(i).map(|t| &t.tok) {
            Some(Tok::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    };
    let punct =
        |i: usize, c: char| matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c);

    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        match &t.tok {
            Tok::Punct('(') => paren_depth += 1,
            Tok::Punct(')') => paren_depth -= 1,
            Tok::Punct('{') => {
                let kind = match pending.take() {
                    Some(Pending::Mod(name)) => {
                        mod_path.push(name);
                        ScopeKind::Mod
                    }
                    Some(Pending::Impl { type_name, trait_impl }) => {
                        impl_ctx.push((type_name, trait_impl));
                        ScopeKind::Impl
                    }
                    Some(Pending::Fn { name, is_pub, line }) => {
                        let (impl_type, trait_impl) = match impl_ctx.last() {
                            Some((ty, tr)) => (Some(ty.clone()), *tr),
                            None => (None, false),
                        };
                        out.fns.push(FnItem {
                            name,
                            module: mod_path.clone(),
                            impl_type,
                            trait_impl,
                            is_pub,
                            line,
                            in_test: file.in_test_region(line),
                            calls: Vec::new(),
                            method_calls: Vec::new(),
                            macros: Vec::new(),
                            panic_sites: Vec::new(),
                            hash_iters: Vec::new(),
                            end_line: line,
                            ret_guard: std::mem::take(&mut pending_ret_guard),
                            lock_sites: Vec::new(),
                            blocking_sites: Vec::new(),
                            alloc_sites: Vec::new(),
                            params: std::mem::take(&mut pending_params),
                            binds: Vec::new(),
                            sinks: Vec::new(),
                        });
                        fn_stack.push(out.fns.len() - 1);
                        ScopeKind::Fn
                    }
                    None => ScopeKind::Other,
                };
                match pending_match.take() {
                    Some((open, scrut)) if open == i => match_stack.push((depth, scrut)),
                    // A stale entry (its `{` was never reached at the
                    // recorded index) is dropped.
                    _ => {}
                }
                scopes.push(Scope { kind, open_depth: depth });
                depth += 1;
            }
            Tok::Punct('}') => {
                depth -= 1;
                while match_stack.last().is_some_and(|(d, _)| *d == depth) {
                    match_stack.pop();
                }
                while scopes.last().is_some_and(|s| s.open_depth == depth) {
                    match scopes.pop().map(|s| s.kind) {
                        Some(ScopeKind::Mod) => {
                            mod_path.pop();
                        }
                        Some(ScopeKind::Impl) => {
                            impl_ctx.pop();
                        }
                        Some(ScopeKind::Fn) => {
                            if let Some(fi) = fn_stack.pop() {
                                out.fns[fi].end_line = t.line;
                            }
                        }
                        _ => {}
                    }
                }
            }
            Tok::Punct(';') => {
                // A `;` before any body means the pending item was
                // braceless (trait method decl, `mod x;`).
                pending = None;
                pending_ret_guard = false;
                pending_params.clear();
            }
            Tok::Ident(name) => {
                let in_sig = pending.is_some();
                if name.ends_with("Guard") && matches!(pending, Some(Pending::Fn { .. })) {
                    pending_ret_guard = true;
                }
                match name.as_str() {
                    "use" if pending.is_none() => {
                        i = parse_use(&toks, i + 1, &mut out.uses);
                        continue;
                    }
                    "mod" if pending.is_none() && paren_depth == 0 => {
                        if let Some(m) = ident(i + 1) {
                            if punct(i + 2, '{') {
                                pending = Some(Pending::Mod(m.to_string()));
                            }
                            i += 2;
                            continue;
                        }
                    }
                    "impl" if pending.is_none() && paren_depth == 0 => {
                        if let Some((p, next)) = parse_impl_header(&toks, i + 1) {
                            pending = Some(p);
                            i = next;
                            continue;
                        }
                    }
                    "fn" if pending.is_none() => {
                        if let Some(fname) = ident(i + 1) {
                            let is_pub = pub_before(&toks, i);
                            pending =
                                Some(Pending::Fn { name: fname.to_string(), is_pub, line: t.line });
                            i += 2;
                            continue;
                        }
                    }
                    // Bindings are collected even in signatures (`set:
                    // HashSet<u32>` parameters) and struct bodies.
                    "HashMap" | "HashSet" => {
                        if let Some(binding) = binding_before(&toks, i) {
                            out.hash_bindings.insert(binding);
                        }
                    }
                    "Mutex" | "RwLock" | "Condvar" => {
                        if let Some(binding) = generic_binding_before(&toks, i) {
                            let class = match name.as_str() {
                                "Mutex" => LockClass::Mutex,
                                "RwLock" => LockClass::RwLock,
                                _ => LockClass::Condvar,
                            };
                            out.lock_bindings.insert(binding, class);
                        }
                    }
                    "TcpStream" | "TcpListener" => {
                        if let Some(binding) = generic_binding_before(&toks, i) {
                            out.net_bindings.insert(binding);
                        }
                    }
                    _ => {}
                }
                // Signature parameter names: `name:` inside the open
                // paren list of a pending `fn` (generic bounds sit
                // outside the parens and never match).
                if paren_depth >= 1
                    && matches!(pending, Some(Pending::Fn { .. }))
                    && name != "self"
                    && !KEYWORDS.contains(&name.as_str())
                    && punct(i + 1, ':')
                {
                    pending_params.push(name.clone());
                }
                // Body-level extraction: calls, macros, iteration sites.
                if !in_sig && !fn_stack.is_empty() && !KEYWORDS.contains(&name.as_str()) {
                    let fi = *fn_stack.last().expect("fn_stack checked non-empty");
                    let after = skip_turbofish(&toks, i + 1);
                    let is_method = i > 0 && matches!(toks[i - 1].tok, Tok::Punct('.'));
                    if punct(after, '(') {
                        if is_method {
                            record_method_call(
                                &toks,
                                i,
                                name,
                                t.line,
                                &mut out.fns[fi],
                                fi,
                                &mut raw_iters,
                                &mut raw_locks,
                            );
                        } else {
                            let segments = path_back(&toks, i);
                            let head = i - 2 * (segments.len() - 1);
                            let call = Call {
                                segments,
                                line: t.line,
                                args: call_args(&toks, after),
                                bound: let_bound_before(&toks, head),
                                recv: None,
                            };
                            classify_path_call(&call, &mut out.fns[fi]);
                            out.fns[fi].calls.push(call);
                        }
                    } else if punct(i + 1, '!')
                        && (punct(i + 2, '(') || punct(i + 2, '[') || punct(i + 2, '{'))
                    {
                        out.fns[fi].macros.push(Call {
                            segments: vec![name.clone()],
                            line: t.line,
                            args: Vec::new(),
                            bound: None,
                            recv: None,
                        });
                        if PANIC_MACROS.contains(&name.as_str()) {
                            out.fns[fi]
                                .panic_sites
                                .push(PanicSite { kind: PanicKind::PanicMacro, line: t.line });
                        } else if ASSERT_MACROS.contains(&name.as_str()) {
                            out.fns[fi]
                                .panic_sites
                                .push(PanicSite { kind: PanicKind::Assert, line: t.line });
                        }
                        if name == "vec" {
                            out.fns[fi]
                                .alloc_sites
                                .push(AllocSite { kind: AllocKind::VecMacro, line: t.line });
                            out.fns[fi].sinks.push(SinkSite {
                                kind: SinkKind::AllocSize,
                                line: t.line,
                                operands: macro_operand_idents(&toks, i + 2),
                            });
                        } else if name == "format" {
                            out.fns[fi]
                                .alloc_sites
                                .push(AllocSite { kind: AllocKind::FormatMacro, line: t.line });
                        }
                    }
                }
                // `for pat in <binding> {` iteration (hash determinism).
                if !in_sig && !fn_stack.is_empty() && name == "in" {
                    if let Some((binding, line)) = for_in_target(&toks, i) {
                        let fi = *fn_stack.last().expect("fn_stack checked non-empty");
                        raw_iters
                            .push((fi, HashIter { binding, method: "for-in".to_string(), line }));
                    }
                    // Generalized dataflow: the loop pattern binds to the
                    // iterated expression's identifiers.
                    if let Some(bind) = for_in_bind(&toks, i) {
                        let fi = *fn_stack.last().expect("fn_stack checked non-empty");
                        out.fns[fi].binds.push(bind);
                    }
                }
                if !in_sig && !fn_stack.is_empty() {
                    match name.as_str() {
                        // Narrowing cast sink (`x as u32`).
                        "as" => {
                            if let Some(site) = cast_site(&toks, i, file) {
                                let fi = *fn_stack.last().expect("fn_stack checked non-empty");
                                out.fns[fi].sinks.push(site);
                            }
                        }
                        // `let pat = expr;` dataflow bind.
                        "let" => {
                            if let Some(bind) = let_bind(&toks, i) {
                                let fi = *fn_stack.last().expect("fn_stack checked non-empty");
                                out.fns[fi].binds.push(bind);
                            }
                        }
                        // `match expr {`: remember the scrutinee; each
                        // arm's `=>` records a bind against it.
                        "match" => {
                            let mut scrut = Vec::new();
                            let mut k = i + 1;
                            while k < toks.len() && k < i + 24 {
                                match &toks[k].tok {
                                    Tok::Punct('{') => {
                                        if !scrut.is_empty() {
                                            pending_match = Some((k, scrut));
                                        }
                                        break;
                                    }
                                    Tok::Punct(';') => break,
                                    Tok::Ident(s) if taint_ident(s) => scrut.push(s.clone()),
                                    _ => {}
                                }
                                k += 1;
                            }
                        }
                        _ => {}
                    }
                }
            }
            Tok::Punct('[') if pending.is_none() && !fn_stack.is_empty() => {
                // Indexing: `[` directly after a value token. Attributes
                // (`#[..]`) and literals (`= [..]`, `&[..]`, `vec![..]`)
                // have a non-value token before and are skipped.
                if i > 0
                    && matches!(
                        toks[i - 1].tok,
                        Tok::Ident(_) | Tok::Num(_) | Tok::Punct(')') | Tok::Punct(']')
                    )
                {
                    // Exclude `ident[` where ident is a keyword-ish token
                    // (e.g. `return [..]`).
                    let prev_kw =
                        matches!(&toks[i - 1].tok, Tok::Ident(s) if KEYWORDS.contains(&s.as_str()));
                    if !prev_kw {
                        let fi = *fn_stack.last().expect("fn_stack checked non-empty");
                        out.fns[fi]
                            .panic_sites
                            .push(PanicSite { kind: PanicKind::Index, line: t.line });
                        out.fns[fi].sinks.push(SinkSite {
                            kind: SinkKind::Index,
                            line: t.line,
                            operands: bracket_operand_idents(&toks, i),
                        });
                    }
                }
            }
            Tok::Punct(op @ ('/' | '%')) if pending.is_none() && !fn_stack.is_empty() => {
                let _ = op;
                if let Some(site) = int_div_site(&toks, i, file) {
                    let fi = *fn_stack.last().expect("fn_stack checked non-empty");
                    out.fns[fi].panic_sites.push(site);
                }
            }
            Tok::Punct('+' | '*' | '-') if pending.is_none() && !fn_stack.is_empty() => {
                if let Some(site) = arith_site(&toks, i, file) {
                    let fi = *fn_stack.last().expect("fn_stack checked non-empty");
                    out.fns[fi].sinks.push(site);
                }
            }
            Tok::Punct('=') if pending.is_none() && !fn_stack.is_empty() && punct(i + 1, '>') => {
                // `match`-arm arrow: bind the arm pattern against the
                // scrutinee of the innermost open match (arms sit one
                // brace level inside it).
                if let Some((d, scrut)) = match_stack.last() {
                    if *d + 1 == depth {
                        let bound = match_arm_pattern(&toks, i);
                        if !bound.is_empty() {
                            let fi = *fn_stack.last().expect("fn_stack checked non-empty");
                            out.fns[fi].binds.push(TaintBind {
                                bound,
                                rhs: scrut.clone(),
                                line: t.line,
                            });
                        }
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }

    // Unterminated bodies (truncated input): extend to the last line.
    let last_line = file.masked_lines.len().saturating_sub(1);
    for fi in fn_stack {
        out.fns[fi].end_line = out.fns[fi].end_line.max(last_line);
    }

    // Keep only iteration sites whose receiver is a known hash binding.
    for (fi, site) in raw_iters {
        if out.hash_bindings.contains(&site.binding) {
            out.fns[fi].hash_iters.push(site);
        }
    }
    // Classify lock-method candidates now that all bindings are known.
    for (fi, c) in raw_locks {
        match c.method.as_str() {
            "lock" => {
                if out.lock_bindings.get(&c.recv) == Some(&LockClass::Mutex) {
                    out.fns[fi].lock_sites.push(LockSite {
                        binding: c.recv,
                        kind: LockKind::MutexLock,
                        line: c.line,
                        guard: c.guard,
                    });
                }
            }
            "read" | "write" => {
                if out.lock_bindings.get(&c.recv) == Some(&LockClass::RwLock) {
                    let kind =
                        if c.method == "read" { LockKind::RwRead } else { LockKind::RwWrite };
                    out.fns[fi].lock_sites.push(LockSite {
                        binding: c.recv,
                        kind,
                        line: c.line,
                        guard: c.guard,
                    });
                } else if out.net_bindings.contains(&c.recv) {
                    out.fns[fi].blocking_sites.push(BlockingSite {
                        op: c.method,
                        line: c.line,
                        condvar_wait: false,
                    });
                }
            }
            // wait / wait_timeout / wait_while / wait_timeout_while
            m => {
                if out.lock_bindings.get(&c.recv) == Some(&LockClass::Condvar) {
                    out.fns[fi].blocking_sites.push(BlockingSite {
                        op: format!("Condvar::{m}"),
                        line: c.line,
                        condvar_wait: true,
                    });
                }
            }
        }
    }
    for f in &mut out.fns {
        f.lock_sites.sort_by_key(|s| s.line);
        f.blocking_sites.sort_by(|a, b| (a.line, &a.op).cmp(&(b.line, &b.op)));
        f.alloc_sites.sort_by_key(|s| (s.line, s.kind));
        f.sinks.sort_by(|a, b| (a.line, a.kind).cmp(&(b.line, b.kind)));
        f.binds.sort_by_key(|b| b.line);
    }
    out
}

/// Record blocking/allocation consequences of a free or path call.
fn classify_path_call(call: &Call, item: &mut FnItem) {
    let segs = &call.segments;
    let tail2 = |a: &str, b: &str| {
        segs.len() >= 2 && segs[segs.len() - 2] == a && segs[segs.len() - 1] == b
    };
    if tail2("thread", "sleep") {
        item.blocking_sites.push(BlockingSite {
            op: "thread::sleep".to_string(),
            line: call.line,
            condvar_wait: false,
        });
    } else if tail2("TcpStream", "connect") {
        item.blocking_sites.push(BlockingSite {
            op: "TcpStream::connect".to_string(),
            line: call.line,
            condvar_wait: false,
        });
    }
    if tail2("Vec", "new") {
        item.alloc_sites.push(AllocSite { kind: AllocKind::VecNew, line: call.line });
    } else if segs.last().is_some_and(|s| s == "with_capacity") {
        item.alloc_sites.push(AllocSite { kind: AllocKind::WithCapacity, line: call.line });
        item.sinks.push(SinkSite {
            kind: SinkKind::AllocSize,
            line: call.line,
            operands: call.args.iter().filter(|a| taint_ident(a)).cloned().collect(),
        });
    } else if tail2("String", "from") {
        item.alloc_sites.push(AllocSite { kind: AllocKind::StringFrom, line: call.line });
    } else if tail2("Box", "new") {
        item.alloc_sites.push(AllocSite { kind: AllocKind::BoxNew, line: call.line });
    }
}

/// Record a `.name(` method call plus, when applicable, its panic,
/// hash-iteration, lock, blocking or allocation consequences.
#[allow(clippy::too_many_arguments)]
fn record_method_call(
    toks: &[Token],
    i: usize,
    name: &str,
    line: usize,
    item: &mut FnItem,
    fi: usize,
    raw_iters: &mut Vec<(usize, HashIter)>,
    raw_locks: &mut Vec<(usize, LockCand)>,
) {
    let after = skip_turbofish(toks, i + 1);
    let args = call_args(toks, after);
    let recv = match toks.get(i.wrapping_sub(2)).map(|t| &t.tok) {
        Some(Tok::Ident(r)) if i >= 2 => Some(r.clone()),
        _ => None,
    };
    item.method_calls.push(Call {
        segments: vec![name.to_string()],
        line,
        args: args.clone(),
        bound: let_bound_before(toks, i),
        recv,
    });
    match name {
        "unwrap" => item.panic_sites.push(PanicSite { kind: PanicKind::Unwrap, line }),
        "expect" => item.panic_sites.push(PanicSite { kind: PanicKind::Expect, line }),
        _ => {}
    }
    if ITER_METHODS.contains(&name) {
        // Receiver: `recv.iter(` — the identifier before the dot.
        if i >= 2 {
            if let Tok::Ident(recv) = &toks[i - 2].tok {
                raw_iters
                    .push((fi, HashIter { binding: recv.clone(), method: name.to_string(), line }));
            }
        }
    }
    match name {
        "lock" | "read" | "write" | "wait" | "wait_timeout" | "wait_while"
        | "wait_timeout_while" => {
            // Receiver-dependent: classified against the file's lock/net
            // bindings once the whole file has been scanned.
            if i >= 2 {
                if let Tok::Ident(recv) = &toks[i - 2].tok {
                    raw_locks.push((
                        fi,
                        LockCand {
                            recv: recv.clone(),
                            method: name.to_string(),
                            line,
                            guard: let_bound_before(toks, i),
                        },
                    ));
                }
            }
        }
        m if BLOCKING_METHODS.contains(&m) => {
            item.blocking_sites.push(BlockingSite {
                op: name.to_string(),
                line,
                condvar_wait: false,
            });
        }
        "join" => {
            // `handle.join()` (thread join) blocks; `parts.join(", ")`
            // (slice join) does not — told apart by the empty arg list.
            if matches!(toks.get(after).map(|t| &t.tok), Some(Tok::Punct('(')))
                && matches!(toks.get(after + 1).map(|t| &t.tok), Some(Tok::Punct(')')))
            {
                item.blocking_sites.push(BlockingSite {
                    op: "join".to_string(),
                    line,
                    condvar_wait: false,
                });
            }
        }
        "clone" => item.alloc_sites.push(AllocSite { kind: AllocKind::Clone, line }),
        "to_vec" => item.alloc_sites.push(AllocSite { kind: AllocKind::ToVec, line }),
        "collect" => item.alloc_sites.push(AllocSite { kind: AllocKind::Collect, line }),
        // Allocation-size sink only: `reserve` grows in place, so it is
        // not part of the hot-path alloc vocabulary, but its argument is
        // still an untrusted-size position.
        "reserve" | "reserve_exact" | "with_capacity" => {
            item.sinks.push(SinkSite {
                kind: SinkKind::AllocSize,
                line,
                operands: args.iter().filter(|a| taint_ident(a)).cloned().collect(),
            });
        }
        _ => {}
    }
}

/// `for pat in [&][mut] binding {` — returns the binding iterated over
/// when the loop consumes a bare identifier (the hash-iteration case).
fn for_in_target(toks: &[Token], in_idx: usize) -> Option<(String, usize)> {
    // Confirm this `in` belongs to a `for` loop: scan back a few tokens
    // for the `for` keyword (patterns are short).
    let lo = in_idx.saturating_sub(8);
    let is_for = toks[lo..in_idx].iter().any(|t| matches!(&t.tok, Tok::Ident(s) if s == "for"));
    if !is_for {
        return None;
    }
    let mut j = in_idx + 1;
    while matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Punct('&')))
        || matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Ident(s)) if s == "mut")
    {
        j += 1;
    }
    match (toks.get(j).map(|t| &t.tok), toks.get(j + 1).map(|t| &t.tok)) {
        (Some(Tok::Ident(name)), Some(Tok::Punct('{'))) => Some((name.clone(), toks[j].line)),
        _ => None,
    }
}

/// Integer-division panic site at token `i` (a `/` or `%`), or `None`
/// when the expression is float arithmetic or a non-zero literal divisor.
fn int_div_site(toks: &[Token], i: usize, file: &MaskedFile) -> Option<PanicSite> {
    // The operator must follow a value token (rules out `&/`-style noise,
    // paths, and the lexer never leaves comment slashes in masked text).
    if i == 0
        || !matches!(
            toks[i - 1].tok,
            Tok::Ident(_) | Tok::Num(_) | Tok::Punct(')') | Tok::Punct(']')
        )
    {
        return None;
    }
    if let Tok::Num(n) = &toks[i - 1].tok {
        if is_float_literal(n) {
            return None;
        }
    }
    // Skip the `=` of a compound `/=` / `%=`.
    let mut j = i + 1;
    if matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Punct('='))) {
        j += 1;
    }
    match toks.get(j).map(|t| &t.tok) {
        Some(Tok::Num(n)) => {
            if is_float_literal(n) || literal_value_nonzero(n) {
                return None;
            }
            Some(PanicSite { kind: PanicKind::IntDiv, line: toks[i].line })
        }
        Some(_) => {
            // Non-literal divisor: float division never panics, so look
            // for float evidence (`f64`/`f32` idents, float literals) in a
            // bounded token window around the operator — this sees through
            // parentheses (`f64::from(h) / (p + 1) as f64`) that the
            // line-level operand check below cannot cross.
            if float_in_window(toks, i) {
                return None;
            }
            let line_text = file.masked_lines.get(toks[i].line).map(String::as_str).unwrap_or("");
            let col = toks[i].col.min(line_text.len());
            let before = rules::operand_before(line_text, col);
            let after = rules::operand_after(line_text, (col + 1).min(line_text.len()));
            if rules::looks_float(&before) || rules::looks_float(&after) {
                None
            } else {
                Some(PanicSite { kind: PanicKind::IntDiv, line: toks[i].line })
            }
        }
        None => None,
    }
}

/// Float evidence (an `f64`/`f32` ident or a float literal) within a few
/// tokens on either side of the operator at `i`, bounded by statement
/// punctuation.
fn float_in_window(toks: &[Token], i: usize) -> bool {
    let is_float_tok = |t: &Tok| match t {
        Tok::Ident(s) => s == "f64" || s == "f32",
        Tok::Num(n) => is_float_literal(n),
        _ => false,
    };
    let stop = |t: &Tok| {
        matches!(t, Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') | Tok::Punct(','))
    };
    for j in (i.saturating_sub(8)..i).rev() {
        if stop(&toks[j].tok) {
            break;
        }
        if is_float_tok(&toks[j].tok) {
            return true;
        }
    }
    for t in toks.iter().skip(i + 1).take(8) {
        if stop(&t.tok) {
            break;
        }
        if is_float_tok(&t.tok) {
            return true;
        }
    }
    false
}

fn is_float_literal(n: &str) -> bool {
    n.contains('.') || n.ends_with("f32") || n.ends_with("f64")
}

/// Whether an integer literal is provably non-zero (`0`, `0x0`, `0_0`
/// style zeros return false).
fn literal_value_nonzero(n: &str) -> bool {
    let digits: String = n.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect();
    let body = digits
        .trim_start_matches("0x")
        .trim_start_matches("0o")
        .trim_start_matches("0b")
        .replace('_', "");
    body.chars().take_while(|c| c.is_ascii_hexdigit()).any(|c| c != '0')
}

/// Whether an identifier can name a tainted value. Locals and parameters
/// are lowercase/snake_case, so uppercase-leading identifiers (types,
/// enum variants, consts), keywords and primitive-type tokens never carry
/// taint; filtering them here keeps binds and sink operands from
/// cross-linking through type annotations and paths.
pub fn taint_ident(s: &str) -> bool {
    const NEVER: &[&str] = &[
        "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
        "f32", "f64", "bool", "str", "char", "self", "_",
    ];
    s.chars().next().is_some_and(|c| c.is_ascii_lowercase() || c == '_')
        && !KEYWORDS.contains(&s)
        && !NEVER.contains(&s)
}

/// Narrowing `as` cast sink at the `as` keyword token `i`, or `None` in
/// float contexts: float→int casts saturate rather than wrap, the same
/// exclusion discipline as [`int_div_site`]. (`use x as y` imports are
/// consumed by `parse_use` and never reach this.)
fn cast_site(toks: &[Token], i: usize, file: &MaskedFile) -> Option<SinkSite> {
    const INT_TYPES: &[&str] =
        &["u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize"];
    match toks.get(i + 1).map(|t| &t.tok) {
        Some(Tok::Ident(target)) if INT_TYPES.contains(&target.as_str()) => {}
        _ => return None,
    }
    // The cast must follow a value token.
    if i == 0
        || !matches!(
            toks[i - 1].tok,
            Tok::Ident(_) | Tok::Num(_) | Tok::Punct(')') | Tok::Punct(']')
        )
    {
        return None;
    }
    if float_in_window(toks, i) {
        return None;
    }
    let line_text = file.masked_lines.get(toks[i].line).map(String::as_str).unwrap_or("");
    let col = toks[i].col.min(line_text.len());
    if rules::looks_float(&rules::operand_before(line_text, col)) {
        return None;
    }
    Some(SinkSite {
        kind: SinkKind::Cast,
        line: toks[i].line,
        operands: operand_idents_back(toks, i),
    })
}

/// Raw integer `+`/`*`/`-` sink at token `i`, or `None` for float
/// arithmetic, unary operators and `->` arrows. Checked/saturating/
/// wrapping forms are method calls and never produce a raw operator.
fn arith_site(toks: &[Token], i: usize, file: &MaskedFile) -> Option<SinkSite> {
    // Binary use only: a value token must precede.
    if i == 0
        || !matches!(
            toks[i - 1].tok,
            Tok::Ident(_) | Tok::Num(_) | Tok::Punct(')') | Tok::Punct(']')
        )
    {
        return None;
    }
    if let Tok::Ident(s) = &toks[i - 1].tok {
        if KEYWORDS.contains(&s.as_str()) {
            return None;
        }
    }
    if let Tok::Num(n) = &toks[i - 1].tok {
        if is_float_literal(n) {
            return None;
        }
    }
    // `->` return arrow (closures in bodies).
    if matches!(toks[i].tok, Tok::Punct('-'))
        && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('>')))
    {
        return None;
    }
    // Skip the `=` of a compound `+=`/`-=`/`*=`.
    let mut j = i + 1;
    if matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Punct('='))) {
        j += 1;
    }
    // The right side must start a value.
    match toks.get(j).map(|t| &t.tok) {
        Some(Tok::Num(n)) if is_float_literal(n) => return None,
        Some(Tok::Ident(_) | Tok::Num(_) | Tok::Punct('(') | Tok::Punct('&') | Tok::Punct('*')) => {
        }
        _ => return None,
    }
    if float_in_window(toks, i) {
        return None;
    }
    let line_text = file.masked_lines.get(toks[i].line).map(String::as_str).unwrap_or("");
    let col = toks[i].col.min(line_text.len());
    let before = rules::operand_before(line_text, col);
    let after = rules::operand_after(line_text, (col + 1).min(line_text.len()));
    if rules::looks_float(&before) || rules::looks_float(&after) {
        return None;
    }
    let mut operands = operand_idents_back(toks, i);
    operands.extend(operand_idents_fwd(toks, i));
    Some(SinkSite { kind: SinkKind::Arith, line: toks[i].line, operands })
}

/// Taintable identifiers in a bounded window before token `i`, stopped at
/// statement punctuation — the left operand(s) of a cast or operator.
fn operand_idents_back(toks: &[Token], i: usize) -> Vec<String> {
    let mut out = Vec::new();
    for j in (i.saturating_sub(8)..i).rev() {
        match &toks[j].tok {
            Tok::Punct(';' | '{' | '}' | ',' | '=') => break,
            Tok::Ident(s) if taint_ident(s) => out.push(s.clone()),
            _ => {}
        }
    }
    out
}

/// Taintable identifiers in a bounded window after token `i`, stopped at
/// statement punctuation — the right operand(s) of an operator.
fn operand_idents_fwd(toks: &[Token], i: usize) -> Vec<String> {
    let mut out = Vec::new();
    for t in toks.iter().skip(i + 1).take(8) {
        match &t.tok {
            Tok::Punct(';' | '{' | '}' | ',' | '=') => break,
            Tok::Ident(s) if taint_ident(s) => out.push(s.clone()),
            _ => {}
        }
    }
    out
}

/// Taintable identifiers inside an index expression `[ .. ]` (bounded
/// scan from the `[` at `open`). The indexed base is deliberately
/// excluded: a tainted container indexed by a trusted loop variable is
/// not an untrusted-index site.
fn bracket_operand_idents(toks: &[Token], open: usize) -> Vec<String> {
    let mut depth = 0i64;
    let mut out = Vec::new();
    for t in toks.iter().skip(open).take(24) {
        match &t.tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            Tok::Ident(s) if taint_ident(s) => out.push(s.clone()),
            _ => {}
        }
    }
    out
}

/// Taintable identifiers inside a `vec![..]` invocation (bounded scan
/// from the opening delimiter at `open`). For the repeat form
/// `vec![x; n]` only the length expression after the `;` counts.
fn macro_operand_idents(toks: &[Token], open: usize) -> Vec<String> {
    let (open_c, close_c) = match toks.get(open).map(|t| &t.tok) {
        Some(Tok::Punct('(')) => ('(', ')'),
        Some(Tok::Punct('[')) => ('[', ']'),
        Some(Tok::Punct('{')) => ('{', '}'),
        _ => return Vec::new(),
    };
    let mut depth = 0i64;
    let mut all = Vec::new();
    let mut after_semi: Option<usize> = None;
    for t in toks.iter().skip(open).take(32) {
        match &t.tok {
            Tok::Punct(c) if *c == open_c => depth += 1,
            Tok::Punct(c) if *c == close_c => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            Tok::Punct(';') if depth == 1 => after_semi = Some(all.len()),
            Tok::Ident(s) if taint_ident(s) => all.push(s.clone()),
            _ => {}
        }
    }
    match after_semi {
        Some(k) => all.split_off(k),
        None => all,
    }
}

/// Dataflow bind for a `let pat = expr` statement at the `let` token.
/// The right-hand scan stops at `{` so `if let`/`let .. else` bodies are
/// never swallowed into the initializer.
fn let_bind(toks: &[Token], let_idx: usize) -> Option<TaintBind> {
    let mut bound = Vec::new();
    let mut eq = None;
    let mut j = let_idx + 1;
    while j < toks.len() && j < let_idx + 16 {
        match &toks[j].tok {
            Tok::Punct('=') => {
                // `==`/`=>` never follow a let pattern; a lone `=` starts
                // the initializer.
                eq = Some(j);
                break;
            }
            Tok::Punct(';' | '{') => break,
            Tok::Ident(s) if taint_ident(s) => bound.push(s.clone()),
            _ => {}
        }
        j += 1;
    }
    let eq = eq?;
    if bound.is_empty() {
        return None;
    }
    let mut rhs = Vec::new();
    for t in toks.iter().skip(eq + 1).take(40) {
        match &t.tok {
            Tok::Punct(';' | '{') => break,
            Tok::Ident(s) if taint_ident(s) => rhs.push(s.clone()),
            _ => {}
        }
    }
    if rhs.is_empty() {
        return None;
    }
    Some(TaintBind { bound, rhs, line: toks[let_idx].line })
}

/// Dataflow bind for `for pat in expr {` at the `in` token: the loop
/// pattern binds to the iterated expression's identifiers.
fn for_in_bind(toks: &[Token], in_idx: usize) -> Option<TaintBind> {
    let lo = in_idx.saturating_sub(8);
    let for_at =
        (lo..in_idx).rev().find(|&j| matches!(&toks[j].tok, Tok::Ident(s) if s == "for"))?;
    let bound: Vec<String> = toks[for_at + 1..in_idx]
        .iter()
        .filter_map(|t| match &t.tok {
            Tok::Ident(s) if taint_ident(s) => Some(s.clone()),
            _ => None,
        })
        .collect();
    if bound.is_empty() {
        return None;
    }
    let mut rhs = Vec::new();
    for t in toks.iter().skip(in_idx + 1).take(16) {
        match &t.tok {
            Tok::Punct('{' | ';') => break,
            Tok::Ident(s) if taint_ident(s) => rhs.push(s.clone()),
            _ => {}
        }
    }
    if rhs.is_empty() {
        return None;
    }
    Some(TaintBind { bound, rhs, line: toks[in_idx].line })
}

/// The taintable identifiers of a match-arm pattern, scanning backward
/// from its `=>` arrow. Struct patterns (`Path { a, b }`) are entered;
/// a previous arm's block (`=> { .. }`, told apart by the token before
/// its `{`) ends the pattern, discarding anything collected inside it.
fn match_arm_pattern(toks: &[Token], arrow: usize) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    let mut brace = 0i64;
    let mut paren = 0i64;
    let mut checkpoint = 0usize;
    let lo = arrow.saturating_sub(24);
    let mut j = arrow;
    while j > lo {
        j -= 1;
        match &toks[j].tok {
            Tok::Punct('}') => {
                if brace == 0 {
                    checkpoint = out.len();
                }
                brace += 1;
            }
            Tok::Punct('{') => {
                if brace == 0 {
                    // The match's own opening brace.
                    break;
                }
                brace -= 1;
                if brace == 0 {
                    let struct_pat =
                        j > 0 && matches!(toks[j - 1].tok, Tok::Ident(_) | Tok::ColonColon);
                    if !struct_pat {
                        out.truncate(checkpoint);
                        break;
                    }
                }
            }
            Tok::Punct(')') => paren += 1,
            Tok::Punct('(') => {
                if paren == 0 {
                    break;
                }
                paren -= 1;
            }
            Tok::Punct(',' | ';') if brace == 0 && paren == 0 => break,
            Tok::Ident(s) if taint_ident(s) => out.push(s.clone()),
            _ => {}
        }
    }
    out
}

/// Skip a turbofish (`::<..>`) after a call/method name; returns the index
/// of the token expected to be `(`.
fn skip_turbofish(toks: &[Token], mut i: usize) -> usize {
    if !matches!(toks.get(i).map(|t| &t.tok), Some(Tok::ColonColon)) {
        return i;
    }
    if !matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('<'))) {
        return i;
    }
    i += 1; // at '<'
    let mut angle = 0i64;
    while i < toks.len() {
        match toks[i].tok {
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => {
                // `->` inside a fn-type parameter: the '-' precedes.
                let arrow = i > 0 && matches!(toks[i - 1].tok, Tok::Punct('-'));
                if !arrow {
                    angle -= 1;
                    if angle == 0 {
                        return i + 1;
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// Walk a `::`-separated path backwards from the final segment at `i`.
fn path_back(toks: &[Token], i: usize) -> Vec<String> {
    let mut segs = vec![match &toks[i].tok {
        Tok::Ident(s) => s.clone(),
        _ => String::new(),
    }];
    let mut j = i;
    while j >= 2
        && matches!(toks[j - 1].tok, Tok::ColonColon)
        && matches!(toks[j - 2].tok, Tok::Ident(_))
    {
        if let Tok::Ident(s) = &toks[j - 2].tok {
            segs.insert(0, s.clone());
        }
        j -= 2;
    }
    segs
}

/// Whether the tokens just before a `fn` keyword include an unrestricted
/// `pub`. The scan stops at statement/item boundaries.
fn pub_before(toks: &[Token], fn_idx: usize) -> bool {
    let lo = fn_idx.saturating_sub(6);
    for j in (lo..fn_idx).rev() {
        match &toks[j].tok {
            Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') | Tok::Punct(',') => return false,
            Tok::Ident(s) if s == "pub" => {
                // `pub(crate)` / `pub(super)` are not public API.
                return !matches!(toks.get(j + 1).map(|t| &t.tok), Some(Tok::Punct('(')));
            }
            _ => {}
        }
    }
    false
}

/// Parse an `impl` header from just after the keyword; returns the pending
/// scope and the index of the opening `{` (where the caller resumes).
fn parse_impl_header(toks: &[Token], mut i: usize) -> Option<(Pending, usize)> {
    // Skip `impl<..>` generics.
    if matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Punct('<'))) {
        let mut angle = 0i64;
        while i < toks.len() {
            match toks[i].tok {
                Tok::Punct('<') => angle += 1,
                Tok::Punct('>') => {
                    let arrow = i > 0 && matches!(toks[i - 1].tok, Tok::Punct('-'));
                    if !arrow {
                        angle -= 1;
                        if angle == 0 {
                            i += 1;
                            break;
                        }
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    // Collect identifiers up to the body `{`; `for` splits trait vs type.
    let mut idents: Vec<&str> = Vec::new();
    let mut for_at: Option<usize> = None;
    let mut angle = 0i64;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('{') if angle == 0 => {
                let (type_name, trait_impl) = match for_at {
                    Some(f) => (idents.get(f + 1).copied(), true),
                    None => (idents.first().copied(), false),
                };
                return type_name
                    .map(|ty| (Pending::Impl { type_name: ty.to_string(), trait_impl }, i));
            }
            Tok::Punct(';') => return None, // `impl Trait for Type;`-style oddity
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => {
                let arrow = i > 0 && matches!(toks[i - 1].tok, Tok::Punct('-'));
                if !arrow {
                    angle -= 1;
                }
            }
            Tok::Ident(s) if s == "for" && angle == 0 => {
                idents.push("for");
                for_at = Some(idents.len() - 1);
            }
            Tok::Ident(s) if angle == 0 => idents.push(s),
            _ => {}
        }
        i += 1;
    }
    None
}

/// Parse a `use` tree starting after the `use` keyword; appends flattened
/// `(bound name, path)` leaves and returns the index just past the `;`.
fn parse_use(toks: &[Token], start: usize, out: &mut Vec<(String, Vec<String>)>) -> usize {
    fn tree(
        toks: &[Token],
        mut i: usize,
        prefix: &[String],
        out: &mut Vec<(String, Vec<String>)>,
    ) -> usize {
        let mut path = prefix.to_vec();
        loop {
            match toks.get(i).map(|t| &t.tok) {
                Some(Tok::Ident(s)) if s == "as" => {
                    // Alias: bind under the new name.
                    if let Some(Tok::Ident(alias)) = toks.get(i + 1).map(|t| &t.tok) {
                        out.push((alias.clone(), path.clone()));
                        return i + 2;
                    }
                    return i + 1;
                }
                Some(Tok::Ident(s)) => {
                    if s == "self" {
                        if let Some(last) = path.last().cloned() {
                            out.push((last, path.clone()));
                        }
                    } else {
                        path.push(s.clone());
                    }
                    i += 1;
                }
                Some(Tok::ColonColon) => {
                    i += 1;
                    if matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Punct('{'))) {
                        // Group: recurse per comma-separated subtree.
                        i += 1;
                        loop {
                            i = tree(toks, i, &path, out);
                            match toks.get(i).map(|t| &t.tok) {
                                Some(Tok::Punct(',')) => i += 1,
                                Some(Tok::Punct('}')) => return i + 1,
                                _ => return i,
                            }
                        }
                    }
                }
                Some(Tok::Punct('*')) => return i + 1, // glob: nothing bound
                _ => {
                    // Leaf ends (`,`, `}`, `;`): bind the final segment.
                    if path.len() > prefix.len() {
                        if let Some(last) = path.last().cloned() {
                            out.push((last, path.clone()));
                        }
                    }
                    return i;
                }
            }
        }
    }
    let mut i = tree(toks, start, &[], out);
    while i < toks.len() && !matches!(toks[i].tok, Tok::Punct(';')) {
        i += 1;
    }
    i + 1
}

/// Find the name a `HashMap`/`HashSet` type annotates: walks back over the
/// path prefix (`std::collections::`) to a `name:` field/let annotation,
/// or back from `= HashMap::new()` to a `let name =` binding.
fn binding_before(toks: &[Token], mut i: usize) -> Option<String> {
    // Hop over `std::collections::` style prefixes.
    while i >= 2
        && matches!(toks[i - 1].tok, Tok::ColonColon)
        && matches!(toks[i - 2].tok, Tok::Ident(_))
    {
        i -= 2;
    }
    binding_target(toks, i)
}

/// Like [`binding_before`], but first unwraps wrapper generics, path
/// prefixes and reference sigils, so `state: Arc<Mutex<T>>`,
/// `lock: &'a std::sync::Mutex<T>` and `w: &mut TcpStream` all resolve
/// to their binding name.
fn generic_binding_before(toks: &[Token], mut i: usize) -> Option<String> {
    loop {
        // `std::sync::Mutex` → hop the path prefix.
        while i >= 2
            && matches!(toks[i - 1].tok, Tok::ColonColon)
            && matches!(toks[i - 2].tok, Tok::Ident(_))
        {
            i -= 2;
        }
        // `Arc<Mutex<..>>` → hop one wrapper generic and retry.
        if i >= 2
            && matches!(toks[i - 1].tok, Tok::Punct('<'))
            && matches!(toks[i - 2].tok, Tok::Ident(_))
        {
            i -= 2;
            continue;
        }
        // `&`, `mut`, `dyn` sigils (lifetimes never reach the token
        // stream).
        if i >= 1
            && (matches!(toks[i - 1].tok, Tok::Punct('&'))
                || matches!(&toks[i - 1].tok, Tok::Ident(s) if s == "mut" || s == "dyn"))
        {
            i -= 1;
            continue;
        }
        break;
    }
    binding_target(toks, i)
}

/// Shared tail of the binding scans: the type at `i` either annotates a
/// `name:` field/let/param or initializes a `let [mut] name = ...`.
fn binding_target(toks: &[Token], i: usize) -> Option<String> {
    match toks.get(i.checked_sub(1)?).map(|t| &t.tok) {
        Some(Tok::Punct(':')) => match toks.get(i.checked_sub(2)?).map(|t| &t.tok) {
            Some(Tok::Ident(name)) => Some(name.clone()),
            _ => None,
        },
        _ => {
            // `let [mut] name = HashMap::new()` / `... = HashSet::new()`.
            let lo = i.saturating_sub(8);
            for j in (lo..i).rev() {
                match &toks[j].tok {
                    Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') => return None,
                    Tok::Ident(s) if s == "let" => {
                        let mut k = j + 1;
                        if matches!(toks.get(k).map(|t| &t.tok), Some(Tok::Ident(s)) if s == "mut")
                        {
                            k += 1;
                        }
                        return match toks.get(k).map(|t| &t.tok) {
                            Some(Tok::Ident(name)) => Some(name.clone()),
                            _ => None,
                        };
                    }
                    _ => {}
                }
            }
            None
        }
    }
}

/// Identifiers inside a call's parentheses (bounded scan from the `(` at
/// `open`), for mapping guard-returning calls to their lock argument.
fn call_args(toks: &[Token], open: usize) -> Vec<String> {
    let mut args = Vec::new();
    if !matches!(toks.get(open).map(|t| &t.tok), Some(Tok::Punct('('))) {
        return args;
    }
    let mut depth = 0i64;
    for t in toks.iter().skip(open).take(40) {
        match &t.tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            Tok::Ident(s) if !KEYWORDS.contains(&s.as_str()) => args.push(s.clone()),
            _ => {}
        }
    }
    args
}

/// The name a call result is let-bound to — `let [mut] g = ..call..`,
/// `if let Some(w) = ..call..` — scanning a bounded window back from the
/// call head. Returns the innermost pattern identifier.
fn let_bound_before(toks: &[Token], head: usize) -> Option<String> {
    let lo = head.saturating_sub(12);
    for j in (lo..head).rev() {
        match &toks[j].tok {
            Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') => return None,
            Tok::Ident(s) if s == "let" => {
                let mut k = j + 1;
                if matches!(toks.get(k).map(|t| &t.tok), Some(Tok::Ident(s)) if s == "mut") {
                    k += 1;
                }
                return match toks.get(k).map(|t| &t.tok) {
                    Some(Tok::Ident(name)) => {
                        // `Some(w)` / `Ok(g)` patterns: the inner name.
                        if matches!(toks.get(k + 1).map(|t| &t.tok), Some(Tok::Punct('('))) {
                            match toks.get(k + 2).map(|t| &t.tok) {
                                Some(Tok::Ident(inner)) => Some(inner.clone()),
                                _ => None,
                            }
                        } else {
                            Some(name.clone())
                        }
                    }
                    _ => None,
                };
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn parse_src(src: &str) -> ParsedFile {
        parse(&scan(src))
    }

    fn fn_named<'a>(p: &'a ParsedFile, name: &str) -> &'a FnItem {
        p.fns.iter().find(|f| f.name == name).unwrap_or_else(|| panic!("no fn `{name}`"))
    }

    #[test]
    fn extracts_free_and_nested_fns() {
        let p = parse_src("fn outer() { fn inner() { helper(); } inner(); }\nfn helper() {}\n");
        assert_eq!(p.fns.len(), 3);
        let outer = fn_named(&p, "outer");
        // `inner()` call is attributed to outer; `helper()` to inner.
        assert!(outer.calls.iter().any(|c| c.segments == ["inner"]));
        assert!(fn_named(&p, "inner").calls.iter().any(|c| c.segments == ["helper"]));
    }

    #[test]
    fn methods_carry_impl_type_and_trait_flag() {
        let src = "struct S;\nimpl S { pub fn m(&self) {} }\nimpl Clone for S { fn clone(&self) -> S { S } }\n";
        let p = parse_src(src);
        let m = fn_named(&p, "m");
        assert_eq!(m.impl_type.as_deref(), Some("S"));
        assert!(!m.trait_impl);
        assert!(m.is_pub);
        let c = fn_named(&p, "clone");
        assert_eq!(c.impl_type.as_deref(), Some("S"));
        assert!(c.trait_impl);
    }

    #[test]
    fn generic_impl_headers_resolve_type() {
        let p = parse_src("impl<'a, T: Send> Foo<'a, T> { fn g(&self) {} }\n");
        assert_eq!(fn_named(&p, "g").impl_type.as_deref(), Some("Foo"));
    }

    #[test]
    fn inline_modules_stack() {
        let p = parse_src("mod a { mod b { fn deep() {} } fn mid() {} }\nfn top() {}\n");
        assert_eq!(fn_named(&p, "deep").module, vec!["a", "b"]);
        assert_eq!(fn_named(&p, "mid").module, vec!["a"]);
        assert!(fn_named(&p, "top").module.is_empty());
    }

    #[test]
    fn pub_restricted_is_not_pub() {
        let p = parse_src("pub fn a() {}\npub(crate) fn b() {}\nfn c() {}\n");
        assert!(fn_named(&p, "a").is_pub);
        assert!(!fn_named(&p, "b").is_pub);
        assert!(!fn_named(&p, "c").is_pub);
    }

    #[test]
    fn calls_methods_and_macros_separate() {
        let src = "fn f() { free(); a::b::qual(); x.method(); mac!(inner()); }\n";
        let p = parse_src(src);
        let f = fn_named(&p, "f");
        assert!(f.calls.iter().any(|c| c.segments == ["free"]));
        assert!(f.calls.iter().any(|c| c.segments == ["a", "b", "qual"]));
        assert!(f.method_calls.iter().any(|c| c.segments == ["method"]));
        assert!(f.macros.iter().any(|c| c.segments == ["mac"]));
        // Calls inside macro arguments still register (over-approximation).
        assert!(f.calls.iter().any(|c| c.segments == ["inner"]));
    }

    #[test]
    fn turbofish_calls_detected() {
        let p = parse_src("fn f() { s.parse::<usize>(); collect::<Vec<_>>(); }\n");
        let f = fn_named(&p, "f");
        assert!(f.method_calls.iter().any(|c| c.segments == ["parse"]));
        assert!(f.calls.iter().any(|c| c.segments == ["collect"]));
    }

    #[test]
    fn ne_operator_is_not_a_macro() {
        let p = parse_src("fn f(a: usize, b: usize) -> bool { a != b }\n");
        assert!(fn_named(&p, "f").macros.is_empty());
    }

    #[test]
    fn panic_sites_unwrap_expect_macros() {
        let src = "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"b\"); assert!(c); }\n";
        let kinds: Vec<PanicKind> =
            fn_named(&parse_src(src), "f").panic_sites.iter().map(|s| s.kind).collect();
        assert!(kinds.contains(&PanicKind::Unwrap));
        assert!(kinds.contains(&PanicKind::Expect));
        assert!(kinds.contains(&PanicKind::PanicMacro));
        assert!(kinds.contains(&PanicKind::Assert));
    }

    #[test]
    fn unwrap_or_is_not_a_panic_site() {
        let p = parse_src("fn f() { x.unwrap_or(0); y.expect_err(\"no\"); }\n");
        assert!(fn_named(&p, "f").panic_sites.is_empty());
    }

    #[test]
    fn indexing_detected_but_not_attrs_or_literals() {
        let src = "fn f(v: &[f64]) -> f64 {\n    #[cfg(target_os = \"linux\")]\n    let a = [1, 2];\n    let b = &v[..2];\n    v[0] + a[1]\n}\n";
        let p = parse_src(src);
        let sites: Vec<&PanicSite> =
            fn_named(&p, "f").panic_sites.iter().filter(|s| s.kind == PanicKind::Index).collect();
        // `v[..2]`, `v[0]`, `a[1]` — but not `#[cfg..]` or `[1, 2]`.
        assert_eq!(sites.len(), 3, "{:?}", fn_named(&p, "f").panic_sites);
    }

    #[test]
    fn integer_division_flagged_float_and_literal_not() {
        let src = "fn f(n: usize, d: usize, x: f64) -> usize {\n    let a = n / d;\n    let b = n % d;\n    let c = n / 2;\n    let e = x / 3.0;\n    let g = x / n as f64;\n    a + b + c + e as usize + g as usize\n}\n";
        let sites: Vec<usize> = fn_named(&parse_src(src), "f")
            .panic_sites
            .iter()
            .filter(|s| s.kind == PanicKind::IntDiv)
            .map(|s| s.line)
            .collect();
        assert_eq!(sites, vec![1, 2], "only the non-literal integer divisions");
    }

    #[test]
    fn float_division_through_parens_not_flagged() {
        // The divisor is parenthesized but cast to f64: float division,
        // no panic site.
        let src = "fn f(hits: u32, pos: usize) -> f64 { f64::from(hits) / (pos + 1) as f64 }\n";
        let p = parse_src(src);
        assert!(fn_named(&p, "f").panic_sites.is_empty(), "{:?}", fn_named(&p, "f").panic_sites);
    }

    #[test]
    fn division_by_zero_literal_flagged() {
        let p = parse_src("fn f(n: usize) -> usize { n / 0 }\n");
        assert_eq!(fn_named(&p, "f").panic_sites.len(), 1);
    }

    #[test]
    fn test_region_fns_marked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { lib(); }\n}\n";
        let p = parse_src(src);
        assert!(!fn_named(&p, "lib").in_test);
        assert!(fn_named(&p, "t").in_test);
    }

    #[test]
    fn use_imports_flattened() {
        let src = "use a::b::C;\nuse x::{y, z as w, q::self};\nuse glob::*;\n";
        let p = parse_src(src);
        let find = |n: &str| p.uses.iter().find(|(b, _)| b == n).map(|(_, p)| p.clone());
        assert_eq!(find("C"), Some(vec!["a".into(), "b".into(), "C".into()]));
        assert_eq!(find("y"), Some(vec!["x".into(), "y".into()]));
        assert_eq!(find("w"), Some(vec!["x".into(), "z".into()]));
        assert_eq!(find("q"), Some(vec!["x".into(), "q".into()]));
    }

    #[test]
    fn hash_bindings_fields_and_lets() {
        let src = "struct S { buckets: HashMap<u64, Vec<u32>>, tomb: std::collections::HashSet<u32> }\nfn f() { let mut seen = HashSet::new(); let m: HashMap<u8, u8> = HashMap::new(); seen.insert(1); }\n";
        let p = parse_src(src);
        for b in ["buckets", "tomb", "seen", "m"] {
            assert!(p.hash_bindings.contains(b), "missing binding {b}: {:?}", p.hash_bindings);
        }
    }

    #[test]
    fn hash_iteration_sites_detected() {
        let src = "struct S { buckets: HashMap<u64, u8> }\nimpl S {\n    fn stats(&self) { for items in self.buckets.values() { use_it(items); } }\n    fn direct(&self, set: HashSet<u32>) { for v in set { use_it(v); } }\n    fn fine(&self, v: Vec<u8>) { for x in v { use_it(x); } v.iter(); }\n}\n";
        let p = parse_src(src);
        assert!(fn_named(&p, "stats").hash_iters.iter().any(|h| h.binding == "buckets"));
        assert!(fn_named(&p, "direct").hash_iters.iter().any(|h| h.binding == "set"));
        assert!(fn_named(&p, "fine").hash_iters.is_empty());
    }

    #[test]
    fn impl_fn_in_signature_does_not_open_impl_scope() {
        let src = "pub fn rel() -> impl Fn(usize) -> bool { move |q| q > 0 }\nfn after() {}\n";
        let p = parse_src(src);
        assert_eq!(fn_named(&p, "after").impl_type, None);
        assert!(fn_named(&p, "rel").is_pub);
    }

    #[test]
    fn self_calls_keep_segment() {
        let p = parse_src("impl S { fn a(&self) { Self::b(); } fn b() {} }\n");
        assert!(fn_named(&p, "a").calls.iter().any(|c| c.segments == ["Self", "b"]));
    }

    #[test]
    fn shadowed_name_both_extracted() {
        // Two fns with the same name in different modules: both exist and
        // keep distinct module paths (resolution happens in callgraph).
        let src = "mod a { pub fn f() {} pub fn call() { f(); } }\nmod b { pub fn f() {} }\n";
        let p = parse_src(src);
        let fs: Vec<&FnItem> = p.fns.iter().filter(|f| f.name == "f").collect();
        assert_eq!(fs.len(), 2);
        assert_ne!(fs[0].module, fs[1].module);
    }

    #[test]
    fn lock_bindings_fields_statics_params_and_lets() {
        let src = "struct Q { state: Mutex<u32>, ready: Condvar, idx: std::sync::RwLock<u8> }\n\
                   static SINK: Mutex<Option<u8>> = Mutex::new(None);\n\
                   fn f(lock: &Mutex<u32>, shared: &Arc<Mutex<u32>>) {\n\
                       let m = Arc::new(Mutex::new(0u32));\n\
                   }\n";
        let p = parse_src(src);
        for (b, class) in [
            ("state", LockClass::Mutex),
            ("ready", LockClass::Condvar),
            ("idx", LockClass::RwLock),
            ("SINK", LockClass::Mutex),
            ("lock", LockClass::Mutex),
            ("shared", LockClass::Mutex),
            ("m", LockClass::Mutex),
        ] {
            assert_eq!(p.lock_bindings.get(b), Some(&class), "binding {b}: {:?}", p.lock_bindings);
        }
    }

    #[test]
    fn lock_sites_classified_by_receiver() {
        let src = "struct S { state: Mutex<u32>, idx: RwLock<u8> }\n\
                   impl S {\n\
                       fn a(&self) { let g = self.state.lock(); use_it(g); }\n\
                       fn b(&self) { self.idx.read(); self.idx.write(); }\n\
                       fn c(&self, v: Vec<u8>) { v.lock(); v.read(); }\n\
                   }\n";
        let p = parse_src(src);
        let a = &fn_named(&p, "a").lock_sites;
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].binding, "state");
        assert_eq!(a[0].kind, LockKind::MutexLock);
        assert_eq!(a[0].guard.as_deref(), Some("g"));
        let b: Vec<LockKind> = fn_named(&p, "b").lock_sites.iter().map(|s| s.kind).collect();
        assert_eq!(b, vec![LockKind::RwRead, LockKind::RwWrite]);
        // Temporaries carry no guard binding.
        assert!(fn_named(&p, "b").lock_sites.iter().all(|s| s.guard.is_none()));
        // Non-lock receivers produce no sites.
        assert!(fn_named(&p, "c").lock_sites.is_empty());
    }

    #[test]
    fn condvar_wait_is_blocking_not_a_lock_site() {
        let src = "struct S { ready: Condvar }\n\
                   impl S { fn w(&self, g: u32) { let _x = self.ready.wait(g); } }\n";
        let p = parse_src(src);
        let w = fn_named(&p, "w");
        assert!(w.lock_sites.is_empty());
        assert_eq!(w.blocking_sites.len(), 1);
        assert_eq!(w.blocking_sites[0].op, "Condvar::wait");
        assert!(w.blocking_sites[0].condvar_wait);
    }

    #[test]
    fn guard_returning_fn_flagged() {
        let src = "fn lockit(m: &Mutex<u32>) -> MutexGuard<u32> { m.lock() }\nfn plain() {}\n";
        let p = parse_src(src);
        assert!(fn_named(&p, "lockit").ret_guard);
        assert!(!fn_named(&p, "plain").ret_guard);
    }

    #[test]
    fn blocking_sites_detected() {
        let src = "fn f(s: TcpStream, parts: Vec<String>) {\n\
                       s.write_all(buf);\n\
                       s.read(&mut buf);\n\
                       thread::sleep(d);\n\
                       rx.recv();\n\
                       h.join();\n\
                       parts.join(value);\n\
                   }\n";
        let p = parse_src(src);
        let ops: Vec<&str> =
            fn_named(&p, "f").blocking_sites.iter().map(|b| b.op.as_str()).collect();
        assert_eq!(ops, vec!["write_all", "read", "thread::sleep", "recv", "join"]);
    }

    #[test]
    fn alloc_sites_curated_vocabulary() {
        let src = "fn f() {\n\
                       let a = Vec::new();\n\
                       let b = Vec::with_capacity(4);\n\
                       let c = vec![0u8; 4];\n\
                       let d = x.clone();\n\
                       let e = s.to_vec();\n\
                       let f2 = it.collect::<Vec<u8>>();\n\
                       let g = format!(\"{q}\");\n\
                       let h = String::from(raw);\n\
                       let i2 = Box::new(3);\n\
                   }\n";
        let p = parse_src(src);
        let kinds: Vec<AllocKind> = fn_named(&p, "f").alloc_sites.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![
                AllocKind::VecNew,
                AllocKind::WithCapacity,
                AllocKind::VecMacro,
                AllocKind::Clone,
                AllocKind::ToVec,
                AllocKind::Collect,
                AllocKind::FormatMacro,
                AllocKind::StringFrom,
                AllocKind::BoxNew,
            ]
        );
    }

    #[test]
    fn fn_end_line_tracks_closing_brace() {
        let src = "fn f() {\n    a();\n    b();\n}\nfn g() {}\n";
        let p = parse_src(src);
        assert_eq!(fn_named(&p, "f").end_line, 3);
        assert_eq!(fn_named(&p, "g").end_line, 4);
    }

    #[test]
    fn params_captured_without_self_or_generics() {
        let src = "impl S { fn m<T: Send>(&self, top_k: usize, mut rows: Vec<T>) {} }\n\
                   fn free(n: u64, flag: bool) {}\nfn unit() {}\n";
        let p = parse_src(src);
        assert_eq!(fn_named(&p, "m").params, vec!["top_k", "rows"]);
        assert_eq!(fn_named(&p, "free").params, vec!["n", "flag"]);
        assert!(fn_named(&p, "unit").params.is_empty());
    }

    #[test]
    fn let_for_and_match_binds_captured() {
        let src = "fn f(req: R) {\n\
                       let n = req.count();\n\
                       for row in rows { use_it(row); }\n\
                       match req {\n\
                           R::Insert { id, rows } => use_it(id),\n\
                           R::Query(q) => use_it(q),\n\
                           _ => {}\n\
                       }\n\
                   }\n";
        let p = parse_src(src);
        let binds = &fn_named(&p, "f").binds;
        let has = |bound: &str, rhs: &str| {
            binds
                .iter()
                .any(|b| b.bound.contains(&bound.to_string()) && b.rhs.contains(&rhs.to_string()))
        };
        assert!(has("n", "req"), "{binds:?}");
        assert!(has("row", "rows"), "{binds:?}");
        assert!(has("id", "req"), "{binds:?}");
        assert!(has("rows", "req"), "{binds:?}");
        assert!(has("q", "req"), "{binds:?}");
    }

    #[test]
    fn match_arm_after_block_arm_does_not_leak_previous_body() {
        let src = "fn f(x: X) {\n\
                       match x {\n\
                           X::A(v) => { helper(v); }\n\
                           X::B(w) => use_it(w),\n\
                       }\n\
                   }\n";
        let p = parse_src(src);
        let binds = &fn_named(&p, "f").binds;
        let b_arm = binds.iter().find(|b| b.bound.contains(&"w".to_string())).unwrap();
        assert!(!b_arm.bound.contains(&"helper".to_string()), "{binds:?}");
        assert!(!b_arm.bound.contains(&"v".to_string()), "{binds:?}");
    }

    #[test]
    fn index_and_cast_sinks_with_operands() {
        let src = "fn f(v: &[u8], idx: usize, n: u64) -> u8 {\n\
                       let c = n as usize;\n\
                       v[idx]\n\
                   }\n\
                   fn g(x: f64) -> usize { (x * 2.0) as usize }\n";
        let p = parse_src(src);
        let f = fn_named(&p, "f");
        let cast = f.sinks.iter().find(|s| s.kind == SinkKind::Cast).unwrap();
        assert!(cast.operands.contains(&"n".to_string()), "{:?}", f.sinks);
        let index = f.sinks.iter().find(|s| s.kind == SinkKind::Index).unwrap();
        assert!(index.operands.contains(&"idx".to_string()), "{:?}", f.sinks);
        // The indexed base is not an operand.
        assert!(!index.operands.contains(&"v".to_string()), "{:?}", f.sinks);
        // Float-context casts are excluded.
        assert!(
            fn_named(&p, "g").sinks.iter().all(|s| s.kind != SinkKind::Cast),
            "{:?}",
            fn_named(&p, "g").sinks
        );
    }

    #[test]
    fn arith_sinks_integer_only() {
        let src = "fn f(a: usize, b: usize) -> usize { a * b + 1 }\n\
                   fn g(x: f64) -> f64 { x * 2.0 }\n\
                   fn h(n: usize) -> usize { n.checked_mul(4).unwrap_or(0) }\n";
        let p = parse_src(src);
        let f_ops: Vec<&str> = fn_named(&p, "f")
            .sinks
            .iter()
            .filter(|s| s.kind == SinkKind::Arith)
            .flat_map(|s| s.operands.iter().map(String::as_str))
            .collect();
        assert!(f_ops.contains(&"a") && f_ops.contains(&"b"), "{f_ops:?}");
        assert!(fn_named(&p, "g").sinks.iter().all(|s| s.kind != SinkKind::Arith));
        assert!(fn_named(&p, "h").sinks.iter().all(|s| s.kind != SinkKind::Arith));
    }

    #[test]
    fn alloc_size_sinks_capacity_reserve_and_vec_macro() {
        let src = "fn f(n: usize, seed: u8) {\n\
                       let a = Vec::<u8>::with_capacity(n * 4);\n\
                       buf.reserve(n);\n\
                       let b = vec![seed; n + 1];\n\
                   }\n";
        let p = parse_src(src);
        let sinks: Vec<&SinkSite> =
            fn_named(&p, "f").sinks.iter().filter(|s| s.kind == SinkKind::AllocSize).collect();
        assert_eq!(sinks.len(), 3, "{sinks:?}");
        assert!(sinks.iter().all(|s| s.operands.contains(&"n".to_string())), "{sinks:?}");
        // Repeat form: only the length expression counts, not the element.
        assert!(sinks.iter().all(|s| !s.operands.contains(&"seed".to_string())), "{sinks:?}");
    }

    #[test]
    fn method_receiver_captured() {
        let p = parse_src("fn f(rows: Vec<u8>) { rows.len(); fetch().len(); }\n");
        let f = fn_named(&p, "f");
        let lens: Vec<Option<&str>> = f
            .method_calls
            .iter()
            .filter(|c| c.segments == ["len"])
            .map(|c| c.recv.as_deref())
            .collect();
        assert_eq!(lens, vec![Some("rows"), None]);
    }

    #[test]
    fn call_args_and_let_binding_captured() {
        let src = "fn f(q: &Q) { let mut state = recover(&q.state); }\n\
                   fn g() { if let Some(w) = fetch().as_mut() { w.flush(); } }\n";
        let p = parse_src(src);
        let rec = fn_named(&p, "f").calls.iter().find(|c| c.segments == ["recover"]).unwrap();
        assert!(rec.args.contains(&"state".to_string()));
        assert_eq!(rec.bound.as_deref(), Some("state"));
        let fetch = fn_named(&p, "g").calls.iter().find(|c| c.segments == ["fetch"]).unwrap();
        assert_eq!(fetch.bound.as_deref(), Some("w"));
    }
}
