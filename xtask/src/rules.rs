//! Lint rules.
//!
//! Each rule walks the masked source (see [`crate::lexer`]) and reports
//! [`Finding`]s. Rules are purely textual — no type information — so they
//! are scoped conservatively by file category and rely on the allowlist
//! for the cases where the textual heuristic is intentionally violated.

use crate::lexer::MaskedFile;

/// Which part of the workspace a file belongs to; decides rule scope.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Category {
    /// `crates/*/src` for the algorithmic crates — full rule set.
    Library,
    /// `crates/bench` library code — harness/reporting, allowed to print.
    Bench,
    /// Root `src/` CLI facade — allowed to print and exit.
    RootFacade,
    /// `src/bin/*` and `crates/*/src/bin/*` — standalone binaries; same
    /// scope as the CLI facade (may print/exit, no library rules).
    Bin,
    /// `shims/*` — vendored stand-ins for crates.io packages.
    Shim,
    /// The lint driver itself.
    Xtask,
    /// Integration tests, examples, benches.
    TestLike,
}

impl Category {
    /// Classify a workspace-relative path (forward slashes).
    pub fn of(rel_path: &str) -> Category {
        let in_test_dir =
            ["/tests/", "/benches/", "/examples/"].iter().any(|d| rel_path.contains(d))
                || rel_path.starts_with("tests/")
                || rel_path.starts_with("benches/")
                || rel_path.starts_with("examples/");
        if rel_path.starts_with("xtask/") {
            Category::Xtask
        } else if rel_path.starts_with("shims/") {
            Category::Shim
        } else if in_test_dir && !rel_path.contains("/src/") {
            // Integration tests/benches/examples of any crate, including
            // nested ones like `crates/bench/benches/*` (previously
            // misfiled under Bench).
            Category::TestLike
        } else if rel_path.starts_with("src/bin/") || rel_path.contains("/src/bin/") {
            // Standalone binaries, including `crates/*/src/bin/*.rs`
            // (previously swallowed by the crate-level match).
            Category::Bin
        } else if rel_path.starts_with("crates/bench/") {
            Category::Bench
        } else if rel_path.starts_with("crates/") {
            if rel_path.contains("/src/") {
                Category::Library
            } else {
                Category::TestLike
            }
        } else if rel_path.starts_with("src/") {
            Category::RootFacade
        } else {
            // stray .rs at the workspace root
            Category::TestLike
        }
    }
}

/// How bad a finding is: `Error` fails the lint run (unless allowlisted),
/// `Warning` is reported and counted but does not affect the exit code.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Severity {
    Error,
    Warning,
}

impl Severity {
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One hop of a call-chain witness attached to a reachability finding:
/// the qualified function name plus where it is defined.
#[derive(Clone, Debug)]
pub struct WitnessStep {
    pub qualified: String,
    pub path: String,
    /// 1-based.
    pub line: usize,
}

/// One diagnostic. `key` is the trimmed source line, used for allowlist
/// matching so entries survive line-number drift. `witness`, when
/// non-empty, is the call chain root → … → finding site that makes a
/// semantic finding reachable.
pub struct Finding {
    pub rule: &'static str,
    pub path: String,
    /// 1-based.
    pub line: usize,
    pub message: String,
    pub key: String,
    pub severity: Severity,
    pub witness: Vec<WitnessStep>,
}

/// Every rule name a finding (and therefore an allowlist entry) can carry.
/// `panic-budget`, `alloc-budget`, `taint-budget` and `lock-order` are
/// deliberately absent: budget regressions must be fixed or re-baselined
/// via `--write-budget`, and deadlock-shaped findings must be fixed —
/// none of them can ever be allowlisted (see [`allowlistable`]).
pub const ALL_RULES: &[&str] = &[
    "no-unwrap",
    "unseeded-rng",
    "raw-thread",
    "obs-gated",
    "float-cmp",
    "no-panic-macro",
    "panics-doc",
    "hash-iter",
    "dead-export",
    "lock-blocking",
];

/// Whether findings of `rule` may be baselined in `xtask/lint.allow`.
/// Budget growth and lock-order cycles/re-entry are always hard errors;
/// `lock-blocking` stays allowlistable because an intentional
/// `Condvar::wait` under its own mutex is the correct coalescing idiom.
pub fn allowlistable(rule: &str) -> bool {
    !matches!(rule, "panic-budget" | "alloc-budget" | "taint-budget" | "lock-order")
}

/// Run every applicable rule on one file.
pub fn check_file(rel_path: &str, file: &MaskedFile) -> Vec<Finding> {
    let cat = Category::of(rel_path);
    let mut findings = Vec::new();

    // Reproducibility is absolute: unseeded randomness is banned everywhere,
    // including tests, benches, and the shims themselves.
    unseeded_rng(rel_path, file, &mut findings);

    // All fan-out goes through the deterministic runtime in linalg::par;
    // ad-hoc threads bypass its partitioning contract and thread-count
    // config, so they are banned everywhere else (tests included).
    raw_thread(rel_path, file, &mut findings);

    // Telemetry outside the obs crate must use the gated entry points so
    // instrumented hot loops stay one relaxed atomic load when disabled.
    obs_gated(rel_path, file, &mut findings);

    if cat == Category::Library {
        no_unwrap_expect(rel_path, file, &mut findings);
        float_eq(rel_path, file, &mut findings);
        no_panic_macros(rel_path, file, &mut findings);
        panics_doc(rel_path, file, &mut findings);
    }
    findings
}

/// True if `hay[pos..]` starts with `needle` as a whole identifier-ish
/// token (not preceded/followed by an identifier character).
fn token_at(hay: &str, pos: usize, needle: &str) -> bool {
    if !hay[pos..].starts_with(needle) {
        return false;
    }
    let before_ok = pos == 0
        || !hay[..pos].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_');
    let after = hay[pos + needle.len()..].chars().next();
    let after_ok = !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
    before_ok && after_ok
}

/// All byte offsets where `needle` occurs as a whole token in `hay`.
fn token_positions(hay: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut start = 0;
    while let Some(off) = hay[start..].find(needle) {
        let pos = start + off;
        if token_at(hay, pos, needle) {
            out.push(pos);
        }
        start = pos + needle.len();
    }
    out
}

fn push(
    findings: &mut Vec<Finding>,
    rule: &'static str,
    path: &str,
    file: &MaskedFile,
    lineno: usize,
    message: String,
) {
    findings.push(Finding {
        rule,
        path: path.to_string(),
        line: lineno + 1,
        message,
        key: file.raw_lines.get(lineno).map(|l| l.trim().to_string()).unwrap_or_default(),
        severity: Severity::Error,
        witness: Vec::new(),
    });
}

/// `no-unwrap`: `.unwrap()` / `.expect(..)` in non-test library code.
/// Hot paths should propagate `Result` or carry a contextual `expect`
/// message that names the violated invariant (allowlisted case by case).
fn no_unwrap_expect(path: &str, file: &MaskedFile, findings: &mut Vec<Finding>) {
    for (lineno, line) in file.masked_lines.iter().enumerate() {
        if file.in_test_region(lineno) {
            continue;
        }
        for method in [".unwrap", ".expect"] {
            // The leading `.` is its own boundary; only the trailing side
            // needs checking (rejects `.unwrap_or`, `.expect_err`, ...).
            let mut start = 0;
            let mut positions = Vec::new();
            while let Some(off) = line[start..].find(method) {
                let pos = start + off;
                let after = line[pos + method.len()..].chars().next();
                if !after.is_some_and(|c| c.is_alphanumeric() || c == '_') {
                    positions.push(pos);
                }
                start = pos + method.len();
            }
            for pos in positions {
                // Require a call: `.unwrap()` / `.expect(`, not a path
                // mention or a method like `.unwrap_or` (token_at already
                // rejects the latter).
                if line[pos + method.len()..].trim_start().starts_with('(') {
                    push(
                        findings,
                        "no-unwrap",
                        path,
                        file,
                        lineno,
                        format!(
                            "`{}` in library code: return a Result or use a contextual \
                             `expect` naming the invariant, then allowlist it",
                            &method[1..]
                        ),
                    );
                }
            }
        }
    }
}

/// `unseeded-rng`: entropy-seeded randomness anywhere in the workspace.
/// Every random draw must flow from an explicit `u64` seed or results
/// are not reproducible.
fn unseeded_rng(path: &str, file: &MaskedFile, findings: &mut Vec<Finding>) {
    for (lineno, line) in file.masked_lines.iter().enumerate() {
        for tok in ["thread_rng", "from_entropy", "random"] {
            for pos in token_positions(line, tok) {
                // `random` only counts as the free function `rand::random`.
                if tok == "random" && !line[..pos].ends_with("rand::") {
                    continue;
                }
                push(
                    findings,
                    "unseeded-rng",
                    path,
                    file,
                    lineno,
                    format!("`{tok}` draws from OS entropy; derive an explicit u64 seed instead"),
                );
            }
        }
    }
}

/// `raw-thread`: direct `thread::spawn` / `thread::scope` /
/// `thread::Builder` anywhere outside `crates/linalg/src/par.rs`. The par
/// module is the single place allowed to touch std threads: everything
/// else must go through its deterministic banded fan-out so that thread
/// count, work thresholds and bitwise-reproducibility guarantees hold.
/// Modules allowed to own OS threads: the deterministic data-parallel
/// runtime, and the serve worker pool (acceptor / connection / batch
/// threads are I/O-bound and routed through one audited spawn point).
const RAW_THREAD_ALLOWED: [&str; 2] = ["crates/linalg/src/par.rs", "crates/serve/src/pool.rs"];

fn raw_thread(path: &str, file: &MaskedFile, findings: &mut Vec<Finding>) {
    if RAW_THREAD_ALLOWED.contains(&path) {
        return;
    }
    for (lineno, line) in file.masked_lines.iter().enumerate() {
        for tok in ["spawn", "scope", "Builder"] {
            for pos in token_positions(line, tok) {
                if !line[..pos].ends_with("thread::") {
                    continue;
                }
                push(
                    findings,
                    "raw-thread",
                    path,
                    file,
                    lineno,
                    format!(
                        "`thread::{tok}` outside linalg::par / serve::pool: use \
                         uhscm_linalg::par (try_par_row_bands_mut / par_map_chunks) \
                         or uhscm_serve's WorkerPool so partitioning, thread count \
                         and shutdown joins stay in audited modules"
                    ),
                );
            }
        }
    }
}

/// `obs-gated`: `*_unguarded` observability entry points anywhere outside
/// `crates/obs/`. The unguarded variants skip the enabled-check; calling
/// them from instrumented code would pay lock/clock costs even with tracing
/// off, breaking the obs overhead contract (one relaxed atomic load).
fn obs_gated(path: &str, file: &MaskedFile, findings: &mut Vec<Finding>) {
    if path.starts_with("crates/obs/") {
        return;
    }
    const SUFFIX: &str = "_unguarded";
    for (lineno, line) in file.masked_lines.iter().enumerate() {
        let mut start = 0;
        while let Some(off) = line[start..].find(SUFFIX) {
            let pos = start + off;
            let after = line[pos + SUFFIX.len()..].chars().next();
            if !after.is_some_and(|c| c.is_alphanumeric() || c == '_') {
                push(
                    findings,
                    "obs-gated",
                    path,
                    file,
                    lineno,
                    "`*_unguarded` observability call outside crates/obs: use the gated \
                     entry points (uhscm_obs::span / registry::counter_add / sink::emit) \
                     so the disabled path stays a single relaxed atomic load"
                        .to_string(),
                );
            }
            start = pos + SUFFIX.len();
        }
    }
}

/// True if `operand` textually looks like a float expression: contains a
/// float literal (`1.0`, `0.5e-3`) or an `f64`/`f32` token. Shared with
/// the parser's integer-division classifier.
pub(crate) fn looks_float(operand: &str) -> bool {
    if token_positions(operand, "f64")
        .into_iter()
        .chain(token_positions(operand, "f32"))
        .next()
        .is_some()
    {
        return true;
    }
    let chars: Vec<char> = operand.chars().collect();
    for i in 1..chars.len() {
        if chars[i] == '.'
            && chars[i - 1].is_ascii_digit()
            && chars.get(i + 1).is_some_and(|c| c.is_ascii_digit())
        {
            return true;
        }
    }
    false
}

/// `float-cmp`: `==` / `!=` against a float operand in numeric code.
/// Exact comparisons are legitimate only for sign/sparsity checks on
/// values constructed exactly (e.g. `sign()` outputs) — allowlist those.
fn float_eq(path: &str, file: &MaskedFile, findings: &mut Vec<Finding>) {
    for (lineno, line) in file.masked_lines.iter().enumerate() {
        if file.in_test_region(lineno) {
            continue;
        }
        let bytes = line.as_bytes();
        let mut i = 0;
        while i + 1 < bytes.len() {
            let two = &line[i..i + 2];
            let is_eq = two == "==";
            let is_ne = two == "!=";
            if !(is_eq || is_ne) {
                i += 1;
                continue;
            }
            // Exclude `<=`, `>=`, `===`-like runs and pattern arrows.
            let prev = if i > 0 { bytes[i - 1] } else { b' ' };
            let next = if i + 2 < bytes.len() { bytes[i + 2] } else { b' ' };
            if is_eq
                && (prev == b'<' || prev == b'>' || prev == b'!' || prev == b'=' || next == b'=')
            {
                i += 2;
                continue;
            }
            let lhs = operand_before(line, i);
            let rhs = operand_after(line, i + 2);
            if looks_float(&lhs) || looks_float(&rhs) {
                push(
                    findings,
                    "float-cmp",
                    path,
                    file,
                    lineno,
                    format!(
                        "exact float comparison `{} {} {}`: compare against a tolerance, \
                         or allowlist if the values are exact by construction",
                        lhs.trim(),
                        two,
                        rhs.trim()
                    ),
                );
            }
            i += 2;
        }
    }
}

const OPERAND_DELIMS: &[char] = &['(', ')', '{', '}', ',', ';', '&', '|', '[', ']'];

pub(crate) fn operand_before(line: &str, end: usize) -> String {
    let start = line[..end].rfind(OPERAND_DELIMS).map(|p| p + 1).unwrap_or(0);
    line[start..end].to_string()
}

pub(crate) fn operand_after(line: &str, start: usize) -> String {
    let end = line[start..].find(OPERAND_DELIMS).map(|p| start + p).unwrap_or(line.len());
    line[start..end].to_string()
}

/// `no-panic-macro`: `panic!` / `todo!` / `unimplemented!` / `dbg!` /
/// `println!` in library crates. Libraries signal errors through types or
/// documented asserts; stdout belongs to the CLI and bench harness.
fn no_panic_macros(path: &str, file: &MaskedFile, findings: &mut Vec<Finding>) {
    for (lineno, line) in file.masked_lines.iter().enumerate() {
        if file.in_test_region(lineno) {
            continue;
        }
        for mac in ["panic!", "todo!", "unimplemented!", "dbg!", "println!"] {
            let bare = &mac[..mac.len() - 1];
            for pos in token_positions(line, bare) {
                if line[pos + bare.len()..].starts_with('!') {
                    push(
                        findings,
                        "no-panic-macro",
                        path,
                        file,
                        lineno,
                        format!("`{mac}` in library code: use Result, a documented assert, or move output to the CLI/bench layer"),
                    );
                }
            }
        }
    }
}

/// `panics-doc`: a `pub fn` whose body can assert/panic must document it
/// under a `# Panics` heading.
fn panics_doc(path: &str, file: &MaskedFile, findings: &mut Vec<Finding>) {
    // Flatten to one string with an offset -> line map for brace matching.
    let mut text = String::new();
    let mut line_of = Vec::new(); // line_of[byte offset] = line index
    for (lineno, line) in file.masked_lines.iter().enumerate() {
        for _ in 0..line.len() + 1 {
            line_of.push(lineno);
        }
        text.push_str(line);
        text.push('\n');
    }

    for sig_pos in token_positions(&text, "pub") {
        // Accept `pub fn` (with optional qualifiers); skip `pub(crate) fn`
        // etc. — not public API.
        let mut after_pub = text[sig_pos + 3..].trim_start();
        for qual in ["const ", "unsafe ", "async "] {
            after_pub = after_pub.strip_prefix(qual).unwrap_or(after_pub).trim_start();
        }
        if !after_pub.starts_with("fn ") {
            continue;
        }
        let sig_line = line_of[sig_pos];
        if file.in_test_region(sig_line) {
            continue;
        }
        // Find the body: first `{` after the signature (a `;` first means
        // a trait method declaration — no body to check).
        let mut i = sig_pos;
        let bytes = text.as_bytes();
        while i < bytes.len() && bytes[i] != b'{' && bytes[i] != b';' {
            i += 1;
        }
        if i >= bytes.len() || bytes[i] == b';' {
            continue;
        }
        let body_start = i;
        let mut depth = 0i64;
        while i < bytes.len() {
            match bytes[i] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        let body = &text[body_start..i.min(text.len())];
        let can_panic = ["assert", "assert_eq", "assert_ne", "panic"].iter().any(|mac| {
            token_positions(body, mac).into_iter().any(|p| body[p + mac.len()..].starts_with('!'))
        });
        if !can_panic {
            continue;
        }
        // Walk doc comments above the signature (skipping attributes).
        let mut documented = false;
        let mut l = sig_line;
        while l > 0 {
            l -= 1;
            let raw = file.raw_lines[l].trim();
            if raw.starts_with("#[") || raw.starts_with("#!") {
                continue;
            }
            if let Some(doc) = raw.strip_prefix("///") {
                if doc.trim() == "# Panics" {
                    documented = true;
                }
                continue;
            }
            break;
        }
        if !documented {
            push(
                findings,
                "panics-doc",
                path,
                file,
                sig_line,
                "pub fn asserts but its doc comment has no `# Panics` section".to_string(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn lint(path: &str, src: &str) -> Vec<Finding> {
        check_file(path, &scan(src))
    }

    #[test]
    fn categories_resolve() {
        // (path, expected) — one row per classification rule, including
        // the former misclassifications: `crates/*/src/bin/*.rs` used to
        // land in Library/Bench and `crates/bench/benches/*` in Bench.
        let table: &[(&str, Category)] = &[
            ("crates/core/src/lib.rs", Category::Library),
            ("crates/core/src/trainer.rs", Category::Library),
            ("crates/core/tests/t.rs", Category::TestLike),
            ("crates/core/benches/b.rs", Category::TestLike),
            ("crates/core/examples/e.rs", Category::TestLike),
            ("crates/bench/src/lib.rs", Category::Bench),
            ("crates/bench/benches/kernels.rs", Category::TestLike),
            ("crates/bench/src/bin/table1.rs", Category::Bin),
            ("crates/eval/src/bin/tool.rs", Category::Bin),
            ("src/bin/uhscm.rs", Category::Bin),
            ("src/cli.rs", Category::RootFacade),
            ("src/lib.rs", Category::RootFacade),
            ("shims/rand/src/lib.rs", Category::Shim),
            ("xtask/src/main.rs", Category::Xtask),
            ("tests/e2e.rs", Category::TestLike),
            ("examples/demo.rs", Category::TestLike),
            ("benches/macro.rs", Category::TestLike),
        ];
        for (path, expected) in table {
            assert_eq!(Category::of(path), *expected, "{path}");
        }
    }

    #[test]
    fn bin_category_exempt_from_library_rules() {
        // Binaries may print and unwrap (CLI-style error handling) but are
        // still subject to the global reproducibility rules.
        assert_eq!(lint("crates/bench/src/bin/table1.rs", "fn main() { x.unwrap(); }").len(), 0);
        assert_eq!(lint("src/bin/uhscm.rs", "fn main() { println!(\"x\"); }").len(), 0);
        assert_eq!(
            lint("crates/bench/src/bin/table1.rs", "fn main() { let r = thread_rng(); }").len(),
            1
        );
    }

    #[test]
    fn unwrap_flagged_in_library_only() {
        let src = "fn f() { x.unwrap(); }";
        assert_eq!(lint("crates/core/src/a.rs", src).len(), 1);
        assert_eq!(lint("tests/a.rs", src).len(), 0);
        assert_eq!(lint("src/cli.rs", src).len(), 0);
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        let src = "fn f() { x.unwrap_or(0); y.unwrap_or_default(); }";
        assert_eq!(lint("crates/core/src/a.rs", src).len(), 0);
    }

    #[test]
    fn expect_flagged() {
        let src = "fn f() { x.expect(\"m\"); }";
        let f = lint("crates/core/src/a.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "no-unwrap");
    }

    #[test]
    fn test_regions_exempt_from_unwrap() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        assert_eq!(lint("crates/core/src/a.rs", src).len(), 0);
    }

    #[test]
    fn unseeded_rng_flagged_everywhere() {
        let src = "fn f() { let mut r = thread_rng(); }";
        for p in ["crates/core/src/a.rs", "tests/a.rs", "shims/x/src/lib.rs"] {
            let f = lint(p, src);
            assert_eq!(f.len(), 1, "{p}");
            assert_eq!(f[0].rule, "unseeded-rng");
        }
    }

    #[test]
    fn seeded_rng_ok() {
        assert_eq!(lint("crates/core/src/a.rs", "fn f() { let r = seeded(42); }").len(), 0);
    }

    #[test]
    fn float_eq_flagged() {
        let f = lint("crates/core/src/a.rs", "fn f(a: f64) { if a == 0.0 {} }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "float-cmp");
    }

    #[test]
    fn float_ne_flagged_int_eq_not() {
        assert_eq!(lint("crates/core/src/a.rs", "fn f(a: f64) { let b = a != 1.5; }").len(), 1);
        assert_eq!(lint("crates/core/src/a.rs", "fn f(n: usize) { if n == 0 {} }").len(), 0);
    }

    #[test]
    fn range_and_le_not_float_cmp() {
        assert_eq!(
            lint("crates/core/src/a.rs", "fn f(n: usize) { for i in 0..n { if i <= 3 {} } }").len(),
            0
        );
    }

    #[test]
    fn panic_macros_flagged() {
        let f = lint("crates/core/src/a.rs", "fn f() { panic!(\"boom\"); }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "no-panic-macro");
        // println in bench/CLI is fine.
        assert_eq!(lint("crates/bench/src/a.rs", "fn f() { println!(\"x\"); }").len(), 0);
    }

    #[test]
    fn panics_doc_required() {
        let bad = "/// Does a thing.\npub fn f(n: usize) { assert!(n > 0); }\n";
        let f = lint("crates/core/src/a.rs", bad);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "panics-doc");

        let good = "/// Does a thing.\n///\n/// # Panics\n///\n/// If `n == 0`.\npub fn f(n: usize) { assert!(n > 0); }\n";
        assert_eq!(lint("crates/core/src/a.rs", good).len(), 0);
    }

    #[test]
    fn panics_doc_ignores_non_asserting_fns() {
        assert_eq!(lint("crates/core/src/a.rs", "pub fn f(n: usize) -> usize { n + 1 }").len(), 0);
        // debug_assert is compiled out in release; not required to be documented.
        assert_eq!(
            lint("crates/core/src/a.rs", "pub fn f(n: usize) { debug_assert!(n > 0); }").len(),
            0
        );
    }

    #[test]
    fn raw_thread_flagged_everywhere_but_par() {
        let src = "fn f() { std::thread::spawn(|| {}); }";
        for p in ["crates/core/src/a.rs", "tests/a.rs", "shims/x/src/lib.rs", "src/cli.rs"] {
            let f = lint(p, src);
            assert_eq!(f.len(), 1, "{p}");
            assert_eq!(f[0].rule, "raw-thread");
        }
        assert_eq!(lint("crates/linalg/src/par.rs", src).len(), 0);
        assert_eq!(lint("crates/serve/src/pool.rs", src).len(), 0);
        // Only the pool module of the serve crate is exempt, not the crate.
        assert_eq!(lint("crates/serve/src/server.rs", src).len(), 1);
    }

    #[test]
    fn raw_thread_catches_scope_and_builder() {
        assert_eq!(lint("crates/core/src/a.rs", "fn f() { thread::scope(|s| {}); }").len(), 1);
        assert_eq!(lint("crates/core/src/a.rs", "fn f() { thread::Builder::new(); }").len(), 1);
        // Unqualified or unrelated identifiers are not thread primitives.
        assert_eq!(lint("crates/core/src/a.rs", "fn f() { spawn(); scope(); }").len(), 0);
        assert_eq!(lint("crates/core/src/a.rs", "fn f() { x.scope_id(); }").len(), 0);
    }

    #[test]
    fn obs_gated_flagged_everywhere_but_obs_crate() {
        let src = "fn f() { uhscm_obs::registry::counter_add_unguarded(\"c\", 1); }";
        for p in ["crates/core/src/a.rs", "tests/a.rs", "src/cli.rs", "crates/eval/tests/t.rs"] {
            let f = lint(p, src);
            assert_eq!(f.len(), 1, "{p}");
            assert_eq!(f[0].rule, "obs-gated");
        }
        assert_eq!(lint("crates/obs/src/span.rs", src).len(), 0);
    }

    #[test]
    fn obs_gated_ignores_gated_calls_and_longer_idents() {
        assert_eq!(
            lint("crates/core/src/a.rs", "fn f() { uhscm_obs::registry::counter_add(\"c\", 1); }")
                .len(),
            0
        );
        // `_unguardedly` is a different identifier, not the suffix.
        assert_eq!(lint("crates/core/src/a.rs", "fn f() { run_unguardedly(); }").len(), 0);
    }

    #[test]
    fn strings_and_comments_do_not_trip_rules() {
        let src = "fn f() { let s = \"call .unwrap() or panic!\"; } // thread_rng\n";
        assert_eq!(lint("crates/core/src/a.rs", src).len(), 0);
    }
}
