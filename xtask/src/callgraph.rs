//! Workspace call graph over the parsed items.
//!
//! Resolution is conservative and name-based (DESIGN.md §11): an
//! ambiguous call produces an edge to *every* candidate, and calls into
//! code we cannot see (std, masked macros) produce no edge. The graph is
//! therefore an over-approximation of the true call relation wherever it
//! has an edge, and an under-approximation only for externals — which is
//! exactly the right bias for panic-reachability (our own panic sites are
//! never missed) at the cost of some false positives.
//!
//! Node identity is `crate::module::[Type::]fn`. Crate/module paths are
//! derived from file paths (`crates/eval/src/index.rs` →
//! `uhscm_eval::index`); inline `mod`s extend the path. Test files and
//! binaries get synthetic crate names (`tests_lint_gate`, `core_test_x`)
//! so cross-crate liveness checks can tell them apart.

use crate::lexer::{self, MaskedFile};
use crate::parser::{self, FnItem, ParsedFile};
use crate::rules::Category;
use std::collections::BTreeMap;

/// One scanned source file with everything derived from it.
pub struct SourceFile {
    pub path: String,
    pub category: Category,
    pub masked: MaskedFile,
    pub parsed: ParsedFile,
    pub crate_name: String,
    /// File-level module path within the crate (inline `mod`s extend it
    /// per function, see [`FnItem::module`]).
    pub module: Vec<String>,
}

/// All scanned files.
pub struct Workspace {
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Build from `(workspace-relative path, source text)` pairs.
    pub fn from_sources<P: AsRef<str>, S: AsRef<str>>(sources: &[(P, S)]) -> Workspace {
        let files = sources
            .iter()
            .map(|(p, s)| {
                let path = p.as_ref().to_string();
                let masked = lexer::scan(s.as_ref());
                let parsed = parser::parse(&masked);
                let (crate_name, module) = crate_and_module(&path);
                SourceFile {
                    category: Category::of(&path),
                    path,
                    masked,
                    parsed,
                    crate_name,
                    module,
                }
            })
            .collect();
        Workspace { files }
    }
}

/// Map a workspace-relative path to `(crate name, file-level module path)`.
///
/// Integration tests, benches, examples and `src/bin` binaries are each
/// their own crate in cargo's model; they get synthetic names here so the
/// dead-export pass can count them as out-of-crate callers.
pub fn crate_and_module(path: &str) -> (String, Vec<String>) {
    fn stem(path: &str) -> String {
        path.rsplit('/').next().unwrap_or(path).trim_end_matches(".rs").to_string()
    }
    fn mods_after(path: &str, src_prefix: &str) -> Vec<String> {
        let rest = &path[src_prefix.len()..];
        let mut mods: Vec<String> = rest.split('/').map(str::to_string).collect();
        if let Some(last) = mods.last_mut() {
            *last = last.trim_end_matches(".rs").to_string();
        }
        mods.retain(|m| !m.is_empty() && m != "lib" && m != "main" && m != "mod");
        mods
    }

    if let Some(rest) = path.strip_prefix("xtask/src/") {
        return ("uhscm_xtask".to_string(), mods_after(path, &path[..path.len() - rest.len()]));
    }
    if let Some(rest) = path.strip_prefix("shims/") {
        let shim = rest.split('/').next().unwrap_or(rest);
        let prefix = format!("shims/{shim}/src/");
        let mods = if path.starts_with(&prefix) { mods_after(path, &prefix) } else { Vec::new() };
        return (shim.to_string(), mods);
    }
    if let Some(rest) = path.strip_prefix("crates/") {
        let krate = rest.split('/').next().unwrap_or(rest).to_string();
        let bin_prefix = format!("crates/{krate}/src/bin/");
        if path.starts_with(&bin_prefix) {
            return (format!("{krate}_bin_{}", stem(path)), Vec::new());
        }
        let src_prefix = format!("crates/{krate}/src/");
        if path.starts_with(&src_prefix) {
            return (format!("uhscm_{krate}"), mods_after(path, &src_prefix));
        }
        if path.starts_with(&format!("crates/{krate}/tests/")) {
            return (format!("{krate}_test_{}", stem(path)), Vec::new());
        }
        if path.starts_with(&format!("crates/{krate}/benches/")) {
            return (format!("{krate}_bench_{}", stem(path)), Vec::new());
        }
        return (format!("{krate}_aux_{}", stem(path)), Vec::new());
    }
    if path.starts_with("src/bin/") {
        return (format!("bin_{}", stem(path)), Vec::new());
    }
    if let Some(_rest) = path.strip_prefix("src/") {
        return ("uhscm".to_string(), mods_after(path, "src/"));
    }
    if path.starts_with("tests/") {
        return (format!("tests_{}", stem(path)), Vec::new());
    }
    if path.starts_with("examples/") {
        return (format!("example_{}", stem(path)), Vec::new());
    }
    if path.starts_with("benches/") {
        return (format!("bench_{}", stem(path)), Vec::new());
    }
    (format!("root_{}", stem(path)), Vec::new())
}

/// Whether code in `caller` can plausibly link against code in `callee`.
/// This prunes name collisions across linkage boundaries (e.g. the xtask
/// binary never calls library crates, library crates never call tests).
pub fn may_call(caller: Category, callee: Category) -> bool {
    use Category::*;
    match caller {
        Xtask => callee == Xtask,
        Library | Shim => matches!(callee, Library | Shim),
        Bench | RootFacade | Bin => matches!(callee, Library | Shim | Bench | RootFacade | Bin),
        TestLike => callee != Xtask,
    }
}

/// One function in the graph.
pub struct Node {
    /// Index into `Workspace::files`.
    pub file: usize,
    /// Index into that file's `parsed.fns`.
    pub fn_idx: usize,
    pub category: Category,
    pub crate_name: String,
    /// `crate::module::[Type::]name` — unique enough for reports.
    pub qualified: String,
}

/// A call edge: `callee` is a node index, `line` the 0-based call site.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    pub callee: usize,
    pub line: usize,
}

pub struct Graph {
    pub nodes: Vec<Node>,
    /// Adjacency: `edges[i]` = sorted, deduped out-edges of node `i`.
    pub edges: Vec<Vec<Edge>>,
}

impl Graph {
    pub fn item<'w>(&self, ws: &'w Workspace, node: usize) -> &'w FnItem {
        &ws.files[self.nodes[node].file].parsed.fns[self.nodes[node].fn_idx]
    }

    pub fn path<'w>(&self, ws: &'w Workspace, node: usize) -> &'w str {
        &ws.files[self.nodes[node].file].path
    }

    /// Build the graph: one node per parsed `fn`, edges by conservative
    /// name resolution.
    pub fn build(ws: &Workspace) -> Graph {
        let mut nodes = Vec::new();
        for (fi, file) in ws.files.iter().enumerate() {
            for (ii, item) in file.parsed.fns.iter().enumerate() {
                let mut parts: Vec<&str> = vec![&file.crate_name];
                parts.extend(file.module.iter().map(String::as_str));
                parts.extend(item.module.iter().map(String::as_str));
                if let Some(ty) = &item.impl_type {
                    parts.push(ty);
                }
                parts.push(&item.name);
                nodes.push(Node {
                    file: fi,
                    fn_idx: ii,
                    category: file.category,
                    crate_name: file.crate_name.clone(),
                    qualified: parts.join("::"),
                });
            }
        }

        // Name → node indices, for candidate lookup.
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (ni, node) in nodes.iter().enumerate() {
            let item = &ws.files[node.file].parsed.fns[node.fn_idx];
            by_name.entry(&item.name).or_default().push(ni);
        }

        let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); nodes.len()];
        for (ni, node) in nodes.iter().enumerate() {
            let file = &ws.files[node.file];
            let item = &file.parsed.fns[node.fn_idx];
            // `use` imports visible in this file: bound name → full path.
            let uses: BTreeMap<&str, &[String]> =
                file.parsed.uses.iter().map(|(b, p)| (b.as_str(), p.as_slice())).collect();
            let mut out = Vec::new();
            for call in &item.calls {
                let mut segments: Vec<String> = call.segments.clone();
                // Expand a single-segment call bound by a `use` import to
                // its full path.
                if segments.len() == 1 {
                    if let Some(full) = uses.get(segments[0].as_str()) {
                        segments = full.to_vec();
                    }
                }
                let targets = if segments.len() == 1 {
                    resolve_plain(ws, &nodes, &by_name, ni, &segments[0])
                } else {
                    resolve_qualified(ws, &nodes, &by_name, ni, &segments, &uses)
                };
                out.extend(targets.into_iter().map(|t| Edge { callee: t, line: call.line }));
            }
            for call in &item.method_calls {
                let name = &call.segments[0];
                let targets = resolve_method(ws, &nodes, &by_name, ni, name);
                out.extend(targets.into_iter().map(|t| Edge { callee: t, line: call.line }));
            }
            out.sort();
            out.dedup();
            edges[ni] = out;
        }
        Graph { nodes, edges }
    }
}

/// Module path of a node = file-level mods + inline mods of the item.
fn node_module(ws: &Workspace, nodes: &[Node], ni: usize) -> Vec<String> {
    let node = &nodes[ni];
    let file = &ws.files[node.file];
    let item = &file.parsed.fns[node.fn_idx];
    let mut m = file.module.clone();
    m.extend(item.module.iter().cloned());
    m
}

/// Resolve a bare `f()` call: prefer same-module, then enclosing modules
/// of the same file (lexical shadowing), then same crate, then anywhere.
fn resolve_plain(
    ws: &Workspace,
    nodes: &[Node],
    by_name: &BTreeMap<&str, Vec<usize>>,
    caller: usize,
    name: &str,
) -> Vec<usize> {
    let Some(cands) = by_name.get(name) else { return Vec::new() };
    let caller_node = &nodes[caller];
    let caller_mod = node_module(ws, nodes, caller);
    let visible: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&c| may_call(caller_node.category, nodes[c].category))
        // Free functions only: a bare call never lands on a method.
        .filter(|&c| ws.files[nodes[c].file].parsed.fns[nodes[c].fn_idx].impl_type.is_none())
        .collect();

    // Tier 1/2: same file, module is a prefix of the caller's module path
    // (deepest — i.e. longest — prefix shadows outer candidates).
    let mut best_prefix: Option<usize> = None;
    let mut tier_file: Vec<usize> = Vec::new();
    for &c in &visible {
        if nodes[c].file != caller_node.file {
            continue;
        }
        let m = node_module(ws, nodes, c);
        if m.len() <= caller_mod.len() && caller_mod[..m.len()] == m[..] {
            match best_prefix {
                Some(b) if m.len() < b => {}
                Some(b) if m.len() == b => tier_file.push(c),
                _ => {
                    best_prefix = Some(m.len());
                    tier_file = vec![c];
                }
            }
        }
    }
    if !tier_file.is_empty() {
        return tier_file;
    }
    // Tier 3: same crate.
    let tier_crate: Vec<usize> = visible
        .iter()
        .copied()
        .filter(|&c| nodes[c].crate_name == caller_node.crate_name)
        .collect();
    if !tier_crate.is_empty() {
        return tier_crate;
    }
    // Tier 4: every visible free fn of that name (import we failed to see).
    visible
}

/// Resolve a qualified `a::b::f()` call. The prefix must appear as an
/// ordered subsequence of the candidate's chain `crate::modules::[Type]`,
/// which tolerates re-exports (`uhscm_eval::HashIndex::build` matches the
/// item defined in `uhscm_eval::index::HashIndex`).
fn resolve_qualified(
    ws: &Workspace,
    nodes: &[Node],
    by_name: &BTreeMap<&str, Vec<usize>>,
    caller: usize,
    segments: &[String],
    uses: &BTreeMap<&str, &[String]>,
) -> Vec<usize> {
    let caller_node = &nodes[caller];
    let name = segments.last().expect("qualified call has segments").clone();
    let mut prefix: Vec<String> = segments[..segments.len() - 1].to_vec();
    // Normalize leading path qualifiers.
    if prefix.first().map(String::as_str) == Some("Self") {
        let item = &ws.files[caller_node.file].parsed.fns[caller_node.fn_idx];
        match &item.impl_type {
            Some(ty) => prefix[0] = ty.clone(),
            None => {
                prefix.remove(0);
            }
        }
    }
    match prefix.first().map(String::as_str) {
        Some("crate") => prefix[0] = caller_node.crate_name.clone(),
        Some("self") | Some("super") => {
            prefix.remove(0);
        }
        _ => {}
    }
    // Expand a `use`-bound first segment (`use uhscm_eval::index; index::f()`).
    if let Some(full) = prefix.first().and_then(|s| uses.get(s.as_str())) {
        let mut expanded: Vec<String> = full.to_vec();
        expanded.extend(prefix[1..].iter().cloned());
        prefix = expanded;
    }

    let Some(cands) = by_name.get(name.as_str()) else { return Vec::new() };
    cands
        .iter()
        .copied()
        .filter(|&c| may_call(caller_node.category, nodes[c].category))
        .filter(|&c| {
            let mut chain: Vec<String> = vec![nodes[c].crate_name.clone()];
            chain.extend(node_module(ws, nodes, c));
            let item = &ws.files[nodes[c].file].parsed.fns[nodes[c].fn_idx];
            if let Some(ty) = &item.impl_type {
                chain.push(ty.clone());
            }
            is_subsequence(&prefix, &chain)
        })
        .collect()
}

/// Resolve a `.f()` method call: any method named `f` the caller may link
/// against. Receiver types are unknown, so this is the broadest rule.
fn resolve_method(
    ws: &Workspace,
    nodes: &[Node],
    by_name: &BTreeMap<&str, Vec<usize>>,
    caller: usize,
    name: &str,
) -> Vec<usize> {
    let Some(cands) = by_name.get(name) else { return Vec::new() };
    let caller_node = &nodes[caller];
    cands
        .iter()
        .copied()
        .filter(|&c| may_call(caller_node.category, nodes[c].category))
        .filter(|&c| ws.files[nodes[c].file].parsed.fns[nodes[c].fn_idx].impl_type.is_some())
        .collect()
}

/// Whether `needle` appears in `hay` in order (not necessarily adjacent).
fn is_subsequence(needle: &[String], hay: &[String]) -> bool {
    let mut it = hay.iter();
    needle.iter().all(|n| it.any(|h| h == n))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(sources: &[(&str, &str)]) -> (Workspace, Graph) {
        let ws = Workspace::from_sources(sources);
        let g = Graph::build(&ws);
        (ws, g)
    }

    fn node_of(g: &Graph, qualified: &str) -> usize {
        g.nodes
            .iter()
            .position(|n| n.qualified == qualified)
            .unwrap_or_else(|| panic!("no node `{qualified}` in {:?}", qualified_names(g)))
    }

    fn qualified_names(g: &Graph) -> Vec<&str> {
        g.nodes.iter().map(|n| n.qualified.as_str()).collect()
    }

    fn callees<'g>(g: &'g Graph, from: &str) -> Vec<&'g str> {
        let ni = node_of(g, from);
        g.edges[ni].iter().map(|e| g.nodes[e.callee].qualified.as_str()).collect()
    }

    #[test]
    fn crate_and_module_mapping() {
        let table: &[(&str, (&str, &[&str]))] = &[
            ("crates/eval/src/index.rs", ("uhscm_eval", &["index"])),
            ("crates/core/src/lib.rs", ("uhscm_core", &[])),
            ("crates/obs/src/trace.rs", ("uhscm_obs", &["trace"])),
            ("crates/bench/src/bin/table1.rs", ("bench_bin_table1", &[])),
            ("crates/eval/tests/metamorphic.rs", ("eval_test_metamorphic", &[])),
            ("crates/bench/benches/kernels.rs", ("bench_bench_kernels", &[])),
            ("src/cli.rs", ("uhscm", &["cli"])),
            ("src/bin/uhscm.rs", ("bin_uhscm", &[])),
            ("tests/lint_gate.rs", ("tests_lint_gate", &[])),
            ("shims/rand/src/lib.rs", ("rand", &[])),
            ("xtask/src/rules.rs", ("uhscm_xtask", &["rules"])),
        ];
        for (path, (krate, mods)) in table {
            let (k, m) = crate_and_module(path);
            assert_eq!(&k, krate, "{path}");
            assert_eq!(m, mods.iter().map(|s| s.to_string()).collect::<Vec<_>>(), "{path}");
        }
    }

    #[test]
    fn same_file_call_resolves() {
        let (_, g) =
            graph(&[("crates/a/src/lib.rs", "pub fn top() { helper(); }\nfn helper() {}\n")]);
        assert_eq!(callees(&g, "uhscm_a::top"), vec!["uhscm_a::helper"]);
    }

    #[test]
    fn shadowed_names_prefer_deepest_module() {
        let src = "fn f() {}\nmod inner { fn f() {} fn call() { f(); } }\nfn call_top() { f(); }\n";
        let (_, g) = graph(&[("crates/a/src/lib.rs", src)]);
        assert_eq!(callees(&g, "uhscm_a::inner::call"), vec!["uhscm_a::inner::f"]);
        assert_eq!(callees(&g, "uhscm_a::call_top"), vec!["uhscm_a::f"]);
    }

    #[test]
    fn cross_crate_qualified_call_resolves() {
        let (_, g) = graph(&[
            ("crates/a/src/lib.rs", "pub fn run() { uhscm_b::work::go(); }\n"),
            ("crates/b/src/work.rs", "pub fn go() {}\n"),
        ]);
        assert_eq!(callees(&g, "uhscm_a::run"), vec!["uhscm_b::work::go"]);
    }

    #[test]
    fn reexport_path_matches_by_subsequence() {
        // Caller uses the crate-root re-export path `uhscm_b::Index::build`
        // even though the item lives in module `idx`.
        let (_, g) = graph(&[
            ("crates/a/src/lib.rs", "pub fn run() { uhscm_b::Index::build(); }\n"),
            ("crates/b/src/idx.rs", "pub struct Index;\nimpl Index { pub fn build() {} }\n"),
        ]);
        assert_eq!(callees(&g, "uhscm_a::run"), vec!["uhscm_b::idx::Index::build"]);
    }

    #[test]
    fn use_import_binds_single_segment_call() {
        let (_, g) = graph(&[
            ("crates/a/src/lib.rs", "use uhscm_b::work::go;\npub fn run() { go(); }\n"),
            ("crates/b/src/work.rs", "pub fn go() {}\n"),
            // Decoy with the same fn name in an unrelated module path.
            ("crates/c/src/other.rs", "pub fn go() {}\n"),
        ]);
        assert_eq!(callees(&g, "uhscm_a::run"), vec!["uhscm_b::work::go"]);
    }

    #[test]
    fn multi_candidate_ambiguity_edges_to_all() {
        // Unqualified call, no import, no same-crate candidate: the graph
        // must fan out to every plausible target.
        let (_, g) = graph(&[
            ("crates/a/src/lib.rs", "pub fn run() { helper(); }\n"),
            ("crates/b/src/lib.rs", "pub fn helper() {}\n"),
            ("crates/c/src/lib.rs", "pub fn helper() {}\n"),
        ]);
        let mut cs = callees(&g, "uhscm_a::run");
        cs.sort();
        assert_eq!(cs, vec!["uhscm_b::helper", "uhscm_c::helper"]);
    }

    #[test]
    fn method_calls_resolve_to_all_methods_not_free_fns() {
        let (_, g) = graph(&[
            ("crates/a/src/lib.rs", "pub fn run(s: S) { s.go(); }\n"),
            (
                "crates/b/src/lib.rs",
                "pub struct S;\nimpl S { pub fn go(&self) {} }\npub fn go() {}\n",
            ),
        ]);
        assert_eq!(callees(&g, "uhscm_a::run"), vec!["uhscm_b::S::go"]);
    }

    #[test]
    fn self_calls_resolve_within_impl() {
        let src = "pub struct S;\nimpl S {\n    pub fn a(&self) { Self::b(); }\n    fn b() {}\n}\n";
        let (_, g) = graph(&[("crates/a/src/lib.rs", src)]);
        assert_eq!(callees(&g, "uhscm_a::S::a"), vec!["uhscm_a::S::b"]);
    }

    #[test]
    fn tests_may_call_libraries_but_not_vice_versa() {
        let (_, g) = graph(&[
            ("crates/a/src/lib.rs", "pub fn api() { helper(); }\n"),
            ("tests/e2e.rs", "fn helper() {}\n#[test]\nfn t() { api(); }\n"),
        ]);
        // The library's bare `helper()` must not resolve into a test crate.
        assert!(callees(&g, "uhscm_a::api").is_empty());
        assert_eq!(callees(&g, "tests_e2e::t"), vec!["uhscm_a::api"]);
    }

    #[test]
    fn xtask_is_isolated() {
        let (_, g) = graph(&[
            ("xtask/src/main.rs", "fn main() { lint(); }\nfn lint() {}\n"),
            ("crates/a/src/lib.rs", "pub fn lint() {}\npub fn run() { main(); }\n"),
        ]);
        assert_eq!(callees(&g, "uhscm_xtask::main"), vec!["uhscm_xtask::lint"]);
        assert!(callees(&g, "uhscm_a::run").is_empty());
    }

    #[test]
    fn macro_heavy_code_still_yields_edges() {
        let src = "pub fn run() { log!(\"x\", compute()); }\nfn compute() {}\n";
        let (_, g) = graph(&[("crates/a/src/lib.rs", src)]);
        assert_eq!(callees(&g, "uhscm_a::run"), vec!["uhscm_a::compute"]);
    }

    #[test]
    fn crate_prefix_resolves_to_caller_crate() {
        let (_, g) = graph(&[
            ("crates/a/src/deep.rs", "pub fn run() { crate::util::go(); }\n"),
            ("crates/a/src/util.rs", "pub fn go() {}\n"),
        ]);
        assert_eq!(callees(&g, "uhscm_a::deep::run"), vec!["uhscm_a::util::go"]);
    }
}
