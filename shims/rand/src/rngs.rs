//! Concrete generators.

use crate::{Rng, SeedableRng};

/// xoshiro256++ generator, seeded via SplitMix64.
///
/// Same name as upstream `rand`'s default so call sites compile unchanged,
/// but the stream differs (upstream uses ChaCha12). All workspace
/// experiments treat the stream as an implementation detail behind a seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        StdRng { s }
    }
}

impl Rng for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s = s;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vector from the xoshiro256++ reference implementation with
    /// state {1, 2, 3, 4}.
    #[test]
    fn matches_reference_stream() {
        let mut r = StdRng { s: [1, 2, 3, 4] };
        let expected: [u64; 5] =
            [41943041, 58720359, 3588806011781223, 3591011842654386, 9228616714210784205];
        for e in expected {
            assert_eq!(r.next_u64(), e);
        }
    }

    #[test]
    fn seeding_avoids_all_zero_state() {
        let r = StdRng::seed_from_u64(0);
        assert_ne!(r.s, [0, 0, 0, 0]);
    }
}
