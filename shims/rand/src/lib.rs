//! Seeded-only stand-in for the `rand` crate.
//!
//! The build sandbox has no crates.io access, so the workspace vendors the
//! narrow slice of `rand` 0.8 it actually uses: the [`Rng`] trait with
//! `gen`/`gen_range`/`gen_bool`, [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`]. Two deliberate differences from upstream:
//!
//! * **No ambient entropy.** `thread_rng`, `from_entropy`, and `random` do
//!   not exist here. Every generator must be constructed from an explicit
//!   seed, which makes unseeded randomness a compile error rather than a
//!   reproducibility bug (`EXPERIMENTS.md` requires bit-reproducible runs).
//! * **Different stream.** `StdRng` is xoshiro256++ seeded via SplitMix64,
//!   not ChaCha12. Streams are stable across platforms and releases of this
//!   workspace, but differ from upstream `rand`.

pub mod rngs;

pub use rngs::StdRng;

/// Types that can be sampled uniformly from an RNG's native output.
///
/// Stand-in for `rand::distributions::Standard` sampling.
pub trait Standard: Sized {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly. Stand-in for
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange {
    type Output;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased-enough integer draw in `[0, n)` via 128-bit widening multiply
/// (Lemire's method without the rejection step; bias is `< n / 2^64`).
#[inline]
fn below<R: Rng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + below(rng, span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + below(rng, span + 1) as $t
            }
        }
    )*};
}

int_range!(usize, u64, u32, u16, u8);

macro_rules! signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(below(rng, span) as $t)
            }
        }
    )*};
}

signed_range!(i64 => u64, i32 => u32, i16 => u16, i8 => u8);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let u: $t = Standard::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let u: $t = Standard::sample(rng);
                start + u * (end - start)
            }
        }
    )*};
}

float_range!(f64, f32);

/// The user-facing random-number trait: a uniform `u64` source plus the
/// sampling conveniences the workspace calls.
pub trait Rng {
    /// Next raw 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// Sample a value uniformly over its natural domain
    /// (`[0, 1)` for floats, full range for integers).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<Rge: SampleRange>(&mut self, range: Rge) -> Rge::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        let u: f64 = Standard::sample(self);
        u < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a small seed.
pub trait SeedableRng: Sized {
    /// Expand a 64-bit seed into a full generator state.
    fn seed_from_u64(seed: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_rng_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let i = r.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let j = r.gen_range(0usize..=5);
            assert!(j <= 5);
            let x = r.gen_range(-2.5..7.5f64);
            assert!((-2.5..7.5).contains(&x));
        }
    }

    #[test]
    fn degenerate_inclusive_range_is_constant() {
        let mut r = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(r.gen_range(1.0..=1.0f64), 1.0);
            assert_eq!(r.gen_range(9usize..=9), 9);
        }
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut r = StdRng::seed_from_u64(6);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn integer_range_covers_all_values() {
        let mut r = StdRng::seed_from_u64(8);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[r.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(10);
        let _ = r.gen_range(5usize..5);
    }
}
