//! Std-only stand-in for `serde`, vendored because the build sandbox has no
//! crates.io access.
//!
//! Upstream serde's visitor architecture is far more than the workspace
//! needs: the experiment binaries only ever `#[derive(Serialize)]` on flat
//! record structs and hand them to `serde_json::to_string_pretty`. This
//! shim therefore models serialization as a conversion to a small
//! [`Value`] tree, which `serde_json` then renders.

// Lets the derive's generated `::serde::` paths resolve even inside this
// crate's own tests (the same trick upstream serde uses).
extern crate self as serde;

pub use serde_derive::Serialize;

/// A self-describing data tree — the output of [`Serialize::to_value`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered map (field order of the deriving struct).
    Map(Vec<(String, Value)>),
}

/// Conversion into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

macro_rules! serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

serialize_uint!(u8, u16, u32, u64, usize);
serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<K: AsRef<str>, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.as_ref().to_string(), v.to_value())).collect())
    }
}

impl Serialize for Value {
    /// A hand-built [`Value`] tree is its own serialization — this lets
    /// callers with dynamic shapes (e.g. the serve wire protocol) feed
    /// `serde_json::to_string` directly.
    fn to_value(&self) -> Value {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(3usize.to_value(), Value::UInt(3));
        assert_eq!((-2i32).to_value(), Value::Int(-2));
        assert_eq!(1.5f64.to_value(), Value::Float(1.5));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_value(), Value::Str("x".into()));
        assert_eq!(None::<u64>.to_value(), Value::Null);
    }

    #[test]
    fn vec_of_struct_like_maps() {
        let v = vec![1u64, 2, 3].to_value();
        assert_eq!(v, Value::Seq(vec![Value::UInt(1), Value::UInt(2), Value::UInt(3)]));
    }

    #[derive(Serialize)]
    struct Record {
        name: String,
        bits: usize,
        map: f64,
    }

    #[test]
    fn derive_preserves_field_order() {
        let r = Record { name: "uhscm".into(), bits: 64, map: 0.812 };
        match r.to_value() {
            Value::Map(fields) => {
                let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(keys, ["name", "bits", "map"]);
            }
            other => panic!("expected map, got {other:?}"),
        }
    }
}
