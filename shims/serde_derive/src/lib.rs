//! `#[derive(Serialize)]` for the vendored serde shim.
//!
//! Supports exactly the shape the workspace uses: non-generic structs with
//! named fields. Anything else gets a clear `compile_error!` instead of a
//! confusing downstream type error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().expect("static error template parses")
}

/// Derive `serde::Serialize` (the shim's value-tree flavour) for a
/// named-field struct, preserving field order.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut tokens = input.into_iter().peekable();

    // Skip attributes (`#[...]`) and visibility before the `struct` keyword.
    let mut name: Option<String> = None;
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(id) = &tt {
            let s = id.to_string();
            if s == "struct" {
                match tokens.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    _ => return compile_error("derive(Serialize): expected struct name"),
                }
                break;
            }
            if s == "enum" || s == "union" {
                return compile_error(
                    "derive(Serialize) shim supports only structs with named fields",
                );
            }
        }
    }
    let Some(name) = name else {
        return compile_error("derive(Serialize): no struct found in input");
    };

    // Find the brace-delimited field group; reject generics along the way.
    let mut fields_group = None;
    for tt in tokens.by_ref() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                return compile_error("derive(Serialize) shim does not support generic structs");
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                fields_group = Some(g);
                break;
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                return compile_error("derive(Serialize) shim does not support tuple structs");
            }
            _ => {}
        }
    }
    let Some(group) = fields_group else {
        return compile_error("derive(Serialize) shim requires named fields");
    };

    // Field names: within each top-level comma chunk, the ident directly
    // before the first `:`. Attributes and visibility come earlier in the
    // chunk and are skipped by tracking the latest ident seen.
    let mut field_names = Vec::new();
    let mut latest_ident: Option<String> = None;
    let mut consumed_colon = false;
    for tt in group.stream() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == ',' => {
                latest_ident = None;
                consumed_colon = false;
            }
            TokenTree::Punct(p) if p.as_char() == ':' && !consumed_colon => {
                if let Some(f) = latest_ident.take() {
                    field_names.push(f);
                }
                consumed_colon = true;
            }
            TokenTree::Ident(id) if !consumed_colon => {
                let s = id.to_string();
                if s != "pub" {
                    latest_ident = Some(s);
                }
            }
            _ => {}
        }
    }
    if field_names.is_empty() {
        return compile_error("derive(Serialize) shim requires at least one named field");
    }

    let entries: String = field_names
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f})),"
            )
        })
        .collect();
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Map(::std::vec![{entries}])\n\
             }}\n\
         }}"
    );
    out.parse().expect("generated impl parses")
}
