//! Std-only stand-in for `serde_json` against the vendored serde shim.
//!
//! Only the encoder the workspace uses: [`to_string_pretty`] (and
//! [`to_string`] for completeness). Non-finite floats serialize as `null`,
//! matching upstream's lossy behaviour for JSON targets.

use serde::{Serialize, Value};
use std::fmt;

/// Serialization error. The value-tree encoder is total, so this is
/// currently uninhabited in practice, but the `Result` return keeps call
/// sites source-compatible with upstream.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json serialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Compact JSON encoding.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Pretty JSON encoding with two-space indentation.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn push_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * level));
    }
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Shortest round-trip representation, with a trailing `.0`
                // so integral floats stay visibly floats.
                let s = format!("{x}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                    if indent.is_none() {
                        // compact: no separator space
                    }
                }
                push_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            push_indent(out, indent, level);
            out.push(']');
        }
        Value::Map(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_indent(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            push_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_scalars() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&"a\"b\n").unwrap(), "\"a\\\"b\\n\"");
    }

    #[test]
    fn pretty_nested_structure() {
        let v = vec![vec![1u64, 2], vec![3]];
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "[\n  [\n    1,\n    2\n  ],\n  [\n    3\n  ]\n]");
    }

    #[derive(serde::Serialize)]
    struct Row {
        name: String,
        score: f64,
    }

    #[test]
    fn derived_struct_renders_as_object() {
        let s = to_string(&Row { name: "itq".into(), score: 0.5 }).unwrap();
        assert_eq!(s, "{\"name\":\"itq\",\"score\":0.5}");
    }

    #[test]
    fn control_chars_escape_as_unicode() {
        assert_eq!(to_string(&"\u{1}").unwrap(), "\"\\u0001\"");
    }
}
