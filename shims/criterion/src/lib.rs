//! Std-only stand-in for `criterion`, vendored because the build sandbox
//! has no crates.io access.
//!
//! Keeps the workspace's `benches/` sources compiling and producing useful
//! wall-clock numbers: per benchmark it warms up briefly, sizes the
//! iteration count to the configured measurement time, then reports
//! min / median / mean over the configured sample count. There is no
//! outlier analysis, no plotting, and no saved baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How per-iteration setup data is amortized in [`Bencher::iter_batched`].
/// The shim runs one setup per measured iteration regardless of variant.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level harness handle.
pub struct Criterion {
    default_measurement_time: Duration,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { default_measurement_time: Duration::from_secs(2), default_sample_size: 20 }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\n== group {name} ==");
        BenchmarkGroup {
            measurement_time: self.default_measurement_time,
            sample_size: self.default_sample_size,
        }
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup {
    measurement_time: Duration,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Measure one benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut bencher = Bencher {
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(name);
        self
    }

    /// End the group (upstream writes reports here; the shim prints live).
    pub fn finish(&mut self) {}
}

/// Runs and times the closure under measurement.
pub struct Bencher {
    measurement_time: Duration,
    sample_size: usize,
    /// Mean per-iteration time of each sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Benchmark `routine` with no per-iteration setup.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm up and estimate a single-iteration cost.
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < Duration::from_millis(50) {
            black_box(routine());
            warm_iters += 1;
        }
        let est = start.elapsed().as_secs_f64() / warm_iters as f64;
        let budget = self.measurement_time.as_secs_f64();
        let per_sample =
            ((budget / self.sample_size as f64 / est).floor() as u64).clamp(1, 1_000_000);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            self.samples.push(t0.elapsed().as_secs_f64() / per_sample as f64);
        }
    }

    /// Benchmark `routine` with fresh setup output per iteration; only the
    /// routine is timed.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        // Warm-up to estimate routine cost (setup excluded from timing).
        let mut elapsed = Duration::ZERO;
        let mut warm_iters = 0u64;
        while elapsed < Duration::from_millis(50) {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            elapsed += t0.elapsed();
            warm_iters += 1;
        }
        let est = elapsed.as_secs_f64() / warm_iters as f64;
        let budget = self.measurement_time.as_secs_f64();
        let per_sample =
            ((budget / self.sample_size as f64 / est).floor() as u64).clamp(1, 1_000_000);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let mut sample = Duration::ZERO;
            for _ in 0..per_sample {
                let input = setup();
                let t0 = Instant::now();
                black_box(routine(input));
                sample += t0.elapsed();
            }
            self.samples.push(sample.as_secs_f64() / per_sample as f64);
        }
    }

    fn report(&self, name: &str) {
        assert!(!self.samples.is_empty(), "bench_function body never called iter()");
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        println!(
            "{name:<40} min {} | median {} | mean {}",
            fmt_time(min),
            fmt_time(median),
            fmt_time(mean)
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:8.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:8.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:8.2} ms", secs * 1e3)
    } else {
        format!("{secs:8.3} s ")
    }
}

/// Collect benchmark functions into a runner, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every group, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_reports_plausible_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-selftest");
        group.measurement_time(Duration::from_millis(120)).sample_size(3);
        group.bench_function("sum_1k", |b| {
            b.iter(|| (0..1000u64).sum::<u64>());
        });
        group.finish();
    }

    #[test]
    fn iter_batched_times_routine_only() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-selftest-batched");
        group.measurement_time(Duration::from_millis(120)).sample_size(3);
        group.bench_function("reverse_vec", |b| {
            b.iter_batched(
                || (0..512u32).collect::<Vec<_>>(),
                |mut v| {
                    v.reverse();
                    v
                },
                BatchSize::SmallInput,
            );
        });
        group.finish();
    }

    #[test]
    fn time_formatting_picks_units() {
        assert!(fmt_time(5e-9).contains("ns"));
        assert!(fmt_time(5e-6).contains("µs"));
        assert!(fmt_time(5e-3).contains("ms"));
        assert!(fmt_time(2.0).contains("s "));
    }
}
