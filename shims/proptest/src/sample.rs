//! Sampling from explicit value lists.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Strategy that picks uniformly from a non-empty list of values.
///
/// # Panics
/// Panics (at generation time) if `values` is empty.
pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
    Select { values }
}

/// See [`select`].
pub struct Select<T> {
    values: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.values.is_empty(), "select requires a non-empty list");
        self.values[rng.gen_range(0..self.values.len())].clone()
    }
}
