//! Std-only stand-in for `proptest`, vendored because the build sandbox has
//! no crates.io access.
//!
//! Implements exactly the surface the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * range, tuple, and mapped strategies ([`Strategy::prop_map`],
//!   [`Strategy::prop_flat_map`]),
//! * [`collection::vec`] / [`collection::btree_set`] / [`sample::select`],
//! * [`any`] for primitive types.
//!
//! Differences from upstream, on purpose:
//!
//! * **Deterministic.** Case seeds derive from an FNV-1a hash of the test
//!   name, so a failure reproduces with plain `cargo test` — no persisted
//!   regression files. `UHSCM_PROPTEST_CASES` scales the case count.
//! * **No shrinking.** Failures report the case index and seed instead of a
//!   minimized input; strategies here are small enough to debug directly.

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Boolean strategies, mirroring `proptest::bool`.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy generating `true`/`false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = ::core::primitive::bool;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            rng.gen()
        }
    }

    /// The uniform boolean strategy.
    pub const ANY: BoolAny = BoolAny;
}

pub use strategy::{any, Arbitrary, Just, Strategy};
pub use test_runner::{ProptestConfig, TestRng};

/// Module-style access used by call sites as `prop::collection::vec(..)`.
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
    pub use crate::sample;
}

/// One-glob import mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!(
                "assertion failed: {} ({}:{}): {}",
                stringify!($cond),
                file!(),
                line!(),
                format!($($fmt)+)
            ));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "assertion failed: {} == {} ({}:{})\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                file!(),
                line!(),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "assertion failed: {} == {} ({}:{}): {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                file!(),
                line!(),
                format!($($fmt)+),
                l,
                r
            ));
        }
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!(
                "assertion failed: {} != {} ({}:{})\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                file!(),
                line!(),
                l
            ));
        }
    }};
}

/// Define property tests. Each `pat in strategy` argument is drawn fresh
/// per case; the body runs once per case and fails via `prop_assert!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$attr:meta])+ fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$attr])+
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let cases = config.effective_cases();
            for case in 0..cases {
                let mut rng = $crate::test_runner::case_rng(stringify!($name), case);
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), String> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                if let Err(msg) = outcome {
                    panic!(
                        "property `{}` failed at case {case}/{cases}: {msg}",
                        stringify!($name)
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in -1.0..1.0f64) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn tuples_and_vecs(v in prop::collection::vec(0.0..10.0f64, 1..8), s in any::<u64>()) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&x| (0.0..10.0).contains(&x)));
            let _ = s;
        }

        #[test]
        fn flat_map_links_sizes(pair in (1usize..6).prop_flat_map(|n| {
            (prop::collection::vec(0.0..1.0f64, n..n + 1), (n..n + 1))
        })) {
            let (v, n) = pair;
            prop_assert_eq!(v.len(), n);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_cases_accepted(x in 0usize..3) {
            prop_assert!(x < 3);
        }
    }

    #[test]
    fn select_draws_from_list() {
        let s = sample::select(vec!["a", "b", "c"]);
        let mut rng = crate::test_runner::case_rng("select", 0);
        for _ in 0..20 {
            let v = s.generate(&mut rng);
            assert!(["a", "b", "c"].contains(&v));
        }
    }

    #[test]
    fn btree_set_respects_size_and_range() {
        let s = collection::btree_set(0usize..20, 0..6);
        let mut rng = crate::test_runner::case_rng("btree", 1);
        for _ in 0..50 {
            let set = s.generate(&mut rng);
            assert!(set.len() < 6);
            assert!(set.iter().all(|&v| v < 20));
        }
    }

    proptest! {
        #[test]
        #[should_panic(expected = "failed at case")]
        fn failing_property_reports_case(x in 0usize..4) {
            prop_assert!(x > 100, "x was {x}");
        }
    }

    use crate::{collection, sample};
}
