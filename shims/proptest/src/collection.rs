//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::collections::BTreeSet;

/// A half-open range of collection sizes.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    start: usize,
    end: usize,
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { start: r.start, end: r.end }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { start: n, end: n + 1 }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.start..self.end)
    }
}

/// Strategy for `Vec<T>` with element strategy `element` and a length drawn
/// from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<T>`: up to `size` draws are inserted, so the
/// resulting set has *at most* the drawn size (duplicates collapse), which
/// matches upstream's behaviour closely enough for these tests.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size: size.into() }
}

/// See [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
