//! The `Strategy` trait and primitive strategies.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking: `generate`
/// draws a single concrete value.
pub trait Strategy {
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then build a dependent strategy from it (e.g. a
    /// dimension first, then vectors of that dimension).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always produce a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

macro_rules! inclusive_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(usize, u64, u32, u16, u8, i64, i32, f64, f32);
inclusive_range_strategy!(usize, u64, u32, u16, u8, f64, f32);

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

/// String strategy from a regex-like pattern. Upstream proptest accepts any
/// regex; this shim supports the single shape the workspace uses — one
/// character class with a bounded repetition, `[class]{min,max}` — and
/// panics with a clear message on anything else.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (class, min, max) = parse_class_repeat(self)
            .unwrap_or_else(|| panic!("unsupported string pattern {self:?}: the proptest shim only supports \"[class]{{min,max}}\""));
        let n = rng.gen_range(min..=max);
        (0..n).map(|_| class[rng.gen_range(0..class.len())]).collect()
    }
}

/// Parse `[a-z ]{1,20}` into (expanded alphabet, min, max).
fn parse_class_repeat(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let (class_src, rest) = rest.split_once(']')?;
    let rest = rest.strip_prefix('{')?;
    let bounds = rest.strip_suffix('}')?;
    let (min_s, max_s) = bounds.split_once(',')?;
    let (min, max) = (min_s.trim().parse().ok()?, max_s.trim().parse().ok()?);
    if min > max {
        return None;
    }
    let mut class = Vec::new();
    let chars: Vec<char> = class_src.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (lo, hi) = (chars[i], chars[i + 2]);
            if lo > hi {
                return None;
            }
            class.extend(lo..=hi);
            i += 3;
        } else {
            class.push(chars[i]);
            i += 1;
        }
    }
    if class.is_empty() {
        None
    } else {
        Some((class, min, max))
    }
}

/// Types with a canonical whole-domain strategy, used via [`any`].
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen()
            }
        }
    )*};
}

arbitrary_via_standard!(u64, u32, f64, f32, bool);

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.gen::<u64>() as usize
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.gen::<u64>() as i64
    }
}

/// Strategy over a type's whole domain: `any::<u64>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// See [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
