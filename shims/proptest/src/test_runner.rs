//! Deterministic case scheduling.

/// The RNG handed to strategies. A plain seeded generator: the whole test
/// run is reproducible from the test name and case index alone.
pub type TestRng = rand::StdRng;

/// Runner configuration; only the case count is tunable.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property for `cases` iterations.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }

    /// Case count after applying the `UHSCM_PROPTEST_CASES` override
    /// (useful for long local soak runs; ignored when unset or invalid).
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("UHSCM_PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Stable 64-bit FNV-1a, so seeds survive toolchain upgrades (unlike
/// `DefaultHasher`, whose output is unspecified across releases).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The RNG for one case of one property: seeded from the test name and the
/// case index, independent of execution order.
pub fn case_rng(test_name: &str, case: u32) -> TestRng {
    use rand::SeedableRng;
    let seed = fnv1a(test_name.as_bytes()) ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    TestRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn case_rngs_are_stable_and_distinct() {
        let a: Vec<u64> = {
            let mut r = case_rng("t", 0);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = case_rng("t", 0);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut c = case_rng("t", 1);
        assert_ne!(a[0], c.next_u64());
    }
}
