#!/bin/bash
set -u
cd /root/repo

# Preflight: refuse to burn hours of experiment time on a workspace that
# fails static analysis or whose training loop trips the numerics sanitizer.
# Record the thread count the parallel runtime will resolve to, so logs of
# long runs are attributable to a machine configuration.
threads="${UHSCM_THREADS:-$(nproc 2>/dev/null || echo 1)}"
echo "=== PREFLIGHT threads=$threads (UHSCM_THREADS=${UHSCM_THREADS:-unset}) ===" >> results/experiments.log
echo "uhscm: parallel kernels will use $threads thread(s)"
echo "=== PREFLIGHT ci $(date +%T) ===" >> results/experiments.log
if ! cargo run -p uhscm-xtask --quiet -- ci >> results/experiments.log 2>&1; then
  echo "PREFLIGHT_FAILED ci" >> results/experiments.log
  exit 1
fi
# The checked quickstart doubles as the telemetry run: UHSCM_OBS routes the
# observability layer's JSON-lines trace to results/trace.jsonl so every
# experiment batch leaves behind a machine-readable record of the pipeline
# stages, per-epoch losses, and retrieval probe statistics.
echo "=== PREFLIGHT checked quickstart $(date +%T) ===" >> results/experiments.log
if ! UHSCM_OBS=results/trace.jsonl cargo run --release --features checked --example quickstart \
    >> results/experiments.log 2>&1; then
  echo "PREFLIGHT_FAILED checked-quickstart" >> results/experiments.log
  exit 1
fi

for b in table1 table2 figure2 figure3 figure4 table3 figure5 figure6; do
  echo "=== START $b $(date +%T) ===" >> results/experiments.log
  ./target/release/$b --scale full > results/$b.out 2> results/$b.err
  echo "=== DONE $b $(date +%T) rc=$? ===" >> results/experiments.log
done

# Serving benchmark: the loadgen client drives an in-process uhscm-serve
# instance over loopback TCP and refreshes BENCH_serve.json (latency
# percentiles, throughput, batch-size distribution, shed rate).
echo "=== START loadgen $(date +%T) ===" >> results/experiments.log
cargo run --release -p uhscm-serve --bin loadgen > results/loadgen.out 2> results/loadgen.err
echo "=== DONE loadgen $(date +%T) rc=$? ===" >> results/experiments.log

# Scale phase: the out-of-core segment store benchmark (DESIGN.md §17)
# stream-builds databases, loads them through the store-backed index, and
# refreshes BENCH_scale.json (schema uhscm-bench-scale/1). 10k and 100k run
# by default; the million-item point is opt-in via UHSCM_SCALE_1M=1 since
# it generates and encodes 10^6 items.
scale_sizes="10000,100000"
if [ "${UHSCM_SCALE_1M:-0}" = "1" ]; then
  scale_sizes="10000,100000,1000000"
fi
echo "=== START scale sizes=$scale_sizes $(date +%T) ===" >> results/experiments.log
cargo run --release -p uhscm-bench --bin scale -- --sizes "$scale_sizes" \
  > results/scale.out 2> results/scale.err
echo "=== DONE scale $(date +%T) rc=$? ===" >> results/experiments.log
cp BENCH_scale.json results/BENCH_scale.json 2>/dev/null || true

echo "ALL_EXPERIMENTS_DONE" >> results/experiments.log
