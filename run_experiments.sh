#!/bin/bash
set -u
cd /root/repo
for b in table1 table2 figure2 figure3 figure4 table3 figure5 figure6; do
  echo "=== START $b $(date +%T) ===" >> results/experiments.log
  ./target/release/$b --scale full > results/$b.out 2> results/$b.err
  echo "=== DONE $b $(date +%T) rc=$? ===" >> results/experiments.log
done
echo "ALL_EXPERIMENTS_DONE" >> results/experiments.log
