//! Method shoot-out: UHSCM against four baselines on one dataset.
//!
//! A miniature version of the paper's Table 1 — same protocol (MAP of
//! Hamming ranking, share-a-label relevance), one dataset, 32 bits.
//!
//! ```sh
//! cargo run --release --example method_shootout [cifar|nus|flickr]
//! ```

use uhscm::baselines::{BaselineKind, DeepBaselineConfig};
use uhscm::core::pipeline::{Pipeline, SimilaritySource};
use uhscm::core::UhscmConfig;
use uhscm::data::{Dataset, DatasetConfig, DatasetKind};
use uhscm::eval::{mean_average_precision, BitCodes, HammingRanker};

fn main() {
    let kind = match std::env::args().nth(1).as_deref() {
        Some("nus") => DatasetKind::NusWideLike,
        Some("flickr") => DatasetKind::FlickrLike,
        _ => DatasetKind::Cifar10Like,
    };
    let bits = 32;
    let dataset = Dataset::generate(
        kind,
        &DatasetConfig {
            n_train: 600,
            n_query: 150,
            n_database: 1_800,
            ..DatasetConfig::default()
        },
        42,
    );
    let pipeline = Pipeline::new(&dataset, 7);
    let query_features = pipeline.features_of(&dataset.split.query);
    let db_features = pipeline.features_of(&dataset.split.database);
    println!("shoot-out on {} @ {bits} bits\n", kind.name());

    let evaluate = |name: &str, query: BitCodes, db: BitCodes| -> (String, f64) {
        let ranker = HammingRanker::new(db);
        let map = mean_average_precision(
            &ranker,
            &query,
            &pipeline.relevance(),
            dataset.split.database.len(),
        );
        (name.to_string(), map)
    };

    let mut board: Vec<(String, f64)> = Vec::new();

    // UHSCM.
    let config = UhscmConfig { bits, epochs: 25, ..UhscmConfig::for_dataset(kind) };
    let model = pipeline.train(&SimilaritySource::default(), &config);
    let (q, db) = pipeline.encode_splits(&model);
    board.push(evaluate("UHSCM", q, db));

    // A spread of baselines: two shallow, two deep.
    let deep_cfg = DeepBaselineConfig { epochs: 25, ..DeepBaselineConfig::default() };
    for kind in [BaselineKind::Lsh, BaselineKind::Itq, BaselineKind::Ssdh, BaselineKind::Cib] {
        let hasher = kind.train(pipeline.train_features(), bits, &deep_cfg, 9);
        board.push(evaluate(
            kind.name(),
            hasher.encode(&query_features),
            hasher.encode(&db_features),
        ));
    }

    board.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite MAP"));
    println!("{:<10} {:>7}", "method", "MAP");
    for (name, map) in &board {
        println!("{name:<10} {map:>7.3}");
    }
    assert_eq!(board[0].0, "UHSCM", "expected UHSCM to lead the board");
    println!("\nUHSCM leads, as in the paper's Table 1.");
}
