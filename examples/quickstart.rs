//! Quickstart: train UHSCM on a small synthetic CIFAR10-like dataset and
//! run a retrieval query.
//!
//! ```sh
//! cargo run --release --example quickstart
//! # with telemetry (writes trace.jsonl and prints a metric summary):
//! UHSCM_OBS=1 cargo run --release --example quickstart
//! ```

use uhscm::core::pipeline::{Pipeline, SimilaritySource};
use uhscm::core::UhscmConfig;
use uhscm::data::{Dataset, DatasetConfig, DatasetKind};
use uhscm::eval::{mean_average_precision, HammingRanker};

fn main() {
    // 1. A small single-label dataset (synthetic stand-in for CIFAR10).
    let config =
        DatasetConfig { n_train: 500, n_query: 100, n_database: 1_500, ..DatasetConfig::default() };
    let dataset = Dataset::generate(DatasetKind::Cifar10Like, &config, 42);
    println!(
        "dataset: {} ({} train / {} query / {} database items, {} classes)",
        dataset.kind.name(),
        dataset.split.train.len(),
        dataset.split.query.len(),
        dataset.split.database.len(),
        dataset.class_names.len()
    );

    // 2. Bind the dataset to frozen VLP / feature-extractor checkpoints.
    let pipeline = Pipeline::new(&dataset, 7);

    // 3. Train the full UHSCM model: concept mining over the NUS-WIDE-81
    //    vocabulary with "a photo of the {c}", denoising, similarity matrix,
    //    and the Eq. 11 hashing loss.
    let uhscm_config =
        UhscmConfig { bits: 64, epochs: 25, ..UhscmConfig::for_dataset(dataset.kind) };
    let model = pipeline.train(&SimilaritySource::default(), &uhscm_config);
    println!("trained a {}-bit hashing network", model.bits());

    // 4. Encode the query and database splits and evaluate MAP.
    let (query_codes, db_codes) = pipeline.encode_splits(&model);
    let ranker = HammingRanker::new(db_codes);
    let map = mean_average_precision(
        &ranker,
        &query_codes,
        &pipeline.relevance(),
        dataset.split.database.len(),
    );
    println!("MAP over the database: {map:.3}");

    // 5. Inspect one query's nearest neighbours.
    let hits = uhscm::eval::top_k(&ranker, &query_codes, 0, &pipeline.relevance(), 5);
    let class_of = |item: usize| dataset.class_names[dataset.labels[item][0]].as_str();
    println!("query 0 is a '{}'; top-5 neighbours:", class_of(dataset.split.query[0]));
    for hit in hits {
        println!(
            "  db[{}] class '{}' at Hamming distance {} ({})",
            hit.index,
            class_of(dataset.split.database[hit.index]),
            hit.distance,
            if hit.relevant { "relevant" } else { "irrelevant" }
        );
    }

    // 6. If UHSCM_OBS enabled tracing, flush the trace and show what the
    //    observability layer collected.
    if let Some(summary) = uhscm::obs::finish() {
        print!("{summary}");
    }
}
