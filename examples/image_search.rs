//! A miniature hash-based image search engine.
//!
//! Builds the UHSCM index once, then serves several retrieval scenarios:
//! Hamming *ranking* (top-k) and Hamming *lookup* (all items within a
//! radius) — the two protocols of §4.2 — and prints per-query precision.
//!
//! ```sh
//! cargo run --release --example image_search
//! ```

use uhscm::core::pipeline::{Pipeline, SimilaritySource};
use uhscm::core::UhscmConfig;
use uhscm::data::{share_label, Dataset, DatasetConfig, DatasetKind};
use uhscm::eval::{top_k, HammingRanker};

fn main() {
    // A multi-label corpus (MIRFlickr-like), the harder retrieval setting.
    let dataset = Dataset::generate(
        DatasetKind::FlickrLike,
        &DatasetConfig { n_train: 600, n_query: 60, n_database: 1_500, ..DatasetConfig::default() },
        42,
    );
    let pipeline = Pipeline::new(&dataset, 7);
    let config = UhscmConfig { bits: 64, epochs: 25, ..UhscmConfig::for_dataset(dataset.kind) };

    println!("indexing {} database images @ {} bits …", dataset.split.database.len(), config.bits);
    let model = pipeline.train(&SimilaritySource::default(), &config);
    let (query_codes, db_codes) = pipeline.encode_splits(&model);
    let ranker = HammingRanker::new(db_codes);
    let names = |item: usize| -> String {
        dataset.labels[item]
            .iter()
            .map(|&c| dataset.class_names[c].clone())
            .collect::<Vec<_>>()
            .join("+")
    };

    // Scenario A: top-k ranking.
    println!("\n== Hamming ranking: top-5 per query ==");
    let rel = pipeline.relevance();
    for qi in 0..4 {
        let q_item = dataset.split.query[qi];
        let hits = top_k(&ranker, &query_codes, qi, &rel, 5);
        println!("query[{qi}] tags [{}]:", names(q_item));
        for h in &hits {
            println!(
                "   d={} [{}] {}",
                h.distance,
                names(dataset.split.database[h.index]),
                if h.relevant { "✓" } else { "✗" }
            );
        }
    }

    // Scenario B: hash lookup within a radius — the constant-time
    // candidate-probing use case that motivates learned binary codes.
    println!("\n== Hash lookup: candidates within Hamming radius 12 ==");
    let radius = 12u32;
    let mut total_candidates = 0usize;
    let mut total_relevant = 0usize;
    for qi in 0..query_codes.len() {
        let q_item = dataset.split.query[qi];
        let dists = ranker.distances(&query_codes, qi);
        for (di, &d) in dists.iter().enumerate() {
            if d <= radius {
                total_candidates += 1;
                if share_label(&dataset.labels[q_item], &dataset.labels[dataset.split.database[di]])
                {
                    total_relevant += 1;
                }
            }
        }
    }
    let db_n = dataset.split.database.len() * query_codes.len();
    println!(
        "probed {} of {} query-database pairs ({:.1}%), lookup precision {:.3}",
        total_candidates,
        db_n,
        100.0 * total_candidates as f64 / db_n as f64,
        total_relevant as f64 / total_candidates.max(1) as f64
    );
}
