//! Train once, serve forever: persist the hashing network and the database
//! codes, reload them in a fresh "process", and serve multi-probe lookups
//! from the bucketed Hamming index.
//!
//! ```sh
//! cargo run --release --example persistent_index
//! ```

use std::io::Cursor;
use uhscm::core::pipeline::{Pipeline, SimilaritySource};
use uhscm::core::UhscmConfig;
use uhscm::data::{Dataset, DatasetConfig, DatasetKind};
use uhscm::eval::{BitCodes, HashIndex};
use uhscm::nn::Mlp;

fn main() {
    // --- Offline: train and persist --------------------------------------
    let dataset = Dataset::generate(
        DatasetKind::Cifar10Like,
        &DatasetConfig { n_train: 500, n_query: 50, n_database: 2_000, ..DatasetConfig::default() },
        42,
    );
    let pipeline = Pipeline::new(&dataset, 7);
    let config = UhscmConfig { bits: 64, epochs: 20, ..UhscmConfig::for_dataset(dataset.kind) };
    let model = pipeline.train(&SimilaritySource::default(), &config);
    let db_codes = model.encode(&pipeline.features_of(&dataset.split.database));

    // Persist network + database codes (here to memory; files in real use).
    let mut net_blob = Vec::new();
    model.network().save(&mut net_blob).expect("serialize network");
    let mut code_blob = Vec::new();
    db_codes.save(&mut code_blob).expect("serialize codes");
    println!(
        "persisted: network {} bytes, {} database codes {} bytes",
        net_blob.len(),
        db_codes.len(),
        code_blob.len()
    );

    // --- Online: reload and serve ----------------------------------------
    let served_net = Mlp::load(&mut Cursor::new(&net_blob)).expect("reload network");
    let served_codes = BitCodes::load(&mut Cursor::new(&code_blob)).expect("reload codes");
    let index = HashIndex::with_default_prefix(served_codes);
    println!(
        "index online: {} codes, {}-bit bucketing prefix, {} buckets",
        index.len(),
        index.prefix_bits(),
        index.bucket_count()
    );

    // Encode incoming queries with the reloaded network and probe.
    let query_codes =
        BitCodes::from_real(&served_net.infer(&pipeline.features_of(&dataset.split.query)));
    let class_of = |item: usize| dataset.class_names[dataset.labels[item][0]].as_str();
    for qi in 0..3 {
        let q_item = dataset.split.query[qi];
        // Radius lookup (hash-lookup protocol) …
        let within = index.lookup(&query_codes, qi, 10);
        // … and k-NN via expanding rings.
        let knn = index.knn(&query_codes, qi, 5);
        let knn_classes: Vec<&str> =
            knn.iter().map(|&(j, _)| class_of(dataset.split.database[j as usize])).collect();
        println!(
            "query[{qi}] ('{}'): {} candidates within radius 10; 5-NN classes {:?}",
            class_of(q_item),
            within.len(),
            knn_classes
        );
    }
}
