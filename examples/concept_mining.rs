//! Concept mining walkthrough: watch the semantic-similarity generator work.
//!
//! Mines concept distributions for a multi-label dataset over the NUS-WIDE
//! 81-concept vocabulary, shows which concepts the Eq. 4-5 denoising keeps,
//! and prints per-image top concepts next to the ground-truth labels.
//!
//! ```sh
//! cargo run --release --example concept_mining
//! ```

use uhscm::core::{concept_distributions, denoise_concepts};
use uhscm::data::{vocab, Dataset, DatasetConfig, DatasetKind};
use uhscm::linalg::vecops;
use uhscm::vlp::{PromptTemplate, SimClip};

fn main() {
    let dataset = Dataset::generate(
        DatasetKind::NusWideLike,
        &DatasetConfig { n_train: 600, n_query: 50, n_database: 1_200, ..DatasetConfig::default() },
        42,
    );
    let clip = SimClip::with_defaults(dataset.latents.cols(), 7);
    let concepts = vocab::nus_wide_81();
    let template = PromptTemplate::PhotoOfThe;
    println!(
        "mining {} concepts with prompt template {:?} over {} training images…\n",
        concepts.len(),
        template.render("<concept>"),
        dataset.split.train.len()
    );

    // Eq. 1-2: score matrix → concept distributions (τ = 3m).
    let train_latents = dataset.latents_of(&dataset.split.train);
    let scores = clip.score_matrix(&train_latents, &concepts, template);
    let distributions = concept_distributions(&scores, 3.0);

    // Eq. 4-5: denoise.
    let kept = denoise_concepts(&distributions);
    let kept_names: Vec<&str> = kept.iter().map(|&j| concepts[j].as_str()).collect();
    println!(
        "denoising kept {} of {} concepts:\n  {}\n",
        kept.len(),
        concepts.len(),
        kept_names.join(", ")
    );
    let dropped: Vec<&str> = (0..concepts.len())
        .filter(|j| !kept.contains(j))
        .take(12)
        .map(|j| concepts[j].as_str())
        .collect();
    println!("examples of discarded (out-of-domain) concepts:\n  {} …\n", dropped.join(", "));

    // Per-image mined concepts vs. ground truth.
    println!("mined top-3 concepts vs. ground-truth labels (first 8 training images):");
    for row in 0..8 {
        let item = dataset.split.train[row];
        let dist = distributions.row(row);
        let mut order: Vec<usize> = (0..concepts.len()).collect();
        order.sort_by(|&a, &b| dist[b].partial_cmp(&dist[a]).expect("finite"));
        let mined: Vec<String> =
            order.iter().take(3).map(|&j| format!("{} ({:.2})", concepts[j], dist[j])).collect();
        let truth: Vec<&str> =
            dataset.labels[item].iter().map(|&c| dataset.class_names[c].as_str()).collect();
        println!("  image {item}: mined [{}]  truth [{}]", mined.join(", "), truth.join(", "));
    }

    // How sharp are the distributions? (entropy diagnostic)
    let mean_entropy: f64 = (0..distributions.rows())
        .map(|i| {
            distributions.row(i).iter().filter(|&&p| p > 1e-12).map(|&p| -p * p.ln()).sum::<f64>()
        })
        .sum::<f64>()
        / distributions.rows() as f64;
    println!(
        "\nmean concept-distribution entropy: {mean_entropy:.2} nats (uniform would be {:.2})",
        (concepts.len() as f64).ln()
    );
    let _ = vecops::argmax(distributions.row(0));
}
