//! The `uhscm` facade must re-export every subsystem under stable paths.

#[test]
fn all_subsystems_reachable_through_facade() {
    // linalg
    let m = uhscm::linalg::Matrix::identity(3);
    assert_eq!(m.shape(), (3, 3));
    // nn
    let mut rng = uhscm::linalg::rng::seeded(1);
    let mlp = uhscm::nn::Mlp::hashing_network(4, &[3], 2, &mut rng);
    assert_eq!(mlp.output_dim(), 2);
    // data
    assert_eq!(uhscm::data::vocab::NUS_WIDE_81.len(), 81);
    // vlp
    let clip = uhscm::vlp::SimClip::with_defaults(8, 1);
    assert_eq!(clip.latent_dim(), 8);
    // eval
    let codes = uhscm::eval::BitCodes::from_real(&uhscm::linalg::Matrix::full(1, 4, 1.0));
    assert_eq!(codes.bits(), 4);
    // core
    let cfg = uhscm::core::UhscmConfig::default();
    assert!(cfg.validate().is_ok());
    // baselines
    assert_eq!(uhscm::baselines::BaselineKind::ALL.len(), 10);
}

#[test]
fn readme_style_pipeline_compiles_and_runs() {
    use uhscm::core::pipeline::{Pipeline, SimilaritySource};
    use uhscm::core::UhscmConfig;
    use uhscm::data::{Dataset, DatasetConfig, DatasetKind};

    let dataset = Dataset::generate(DatasetKind::Cifar10Like, &DatasetConfig::tiny(), 42);
    let pipeline = Pipeline::new(&dataset, 7);
    let config = UhscmConfig { bits: 16, epochs: 2, ..UhscmConfig::for_dataset(dataset.kind) };
    let model = pipeline.train(&SimilaritySource::default(), &config);
    let codes = model.encode(&pipeline.features_of(&dataset.split.query));
    assert_eq!(codes.bits(), 16);
    assert_eq!(codes.len(), dataset.split.query.len());
}
