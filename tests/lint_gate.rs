//! Tier-1 gate: the workspace must be lint-clean.
//!
//! Shells out to the `uhscm-xtask` lint driver so `cargo test` fails
//! whenever a rule is violated without an allowlisted justification, or
//! an allowlist entry goes stale. The `--json` run additionally pins the
//! machine-readable report: it must parse (via the workspace's own JSON
//! reader in `uhscm::obs::trace`), carry all seven semantic analyses
//! (panic reachability, determinism, dead exports, lock order,
//! blocking-under-lock, the allocation budget, and the taint-flow pass),
//! hold all three checked-in budgets, report a per-pass timing for every
//! analysis, and be determinism-clean. See `xtask/src/main.rs` for the
//! rules and `xtask/src/analysis/` for the call-graph passes.

use std::process::Command;
use uhscm::obs::trace::{parse, Json};

fn run_lint(extra: &[&str]) -> (std::process::Output, String, String) {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let mut args = vec!["run", "-p", "uhscm-xtask", "--quiet", "--", "lint"];
    args.extend_from_slice(extra);
    let out = Command::new(cargo)
        .args(&args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("failed to spawn `cargo run -p uhscm-xtask`");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    (out, stdout, stderr)
}

#[test]
fn workspace_is_lint_clean() {
    let (out, stdout, stderr) = run_lint(&[]);
    assert!(
        out.status.success(),
        "lint findings (fix them or add a justified entry to xtask/lint.allow):\n\
         {stdout}\n{stderr}"
    );
    assert!(stdout.contains("0 errors"), "unexpected lint output:\n{stdout}");
}

#[test]
fn lint_json_report_is_well_formed_and_budget_holds() {
    let (out, stdout, stderr) = run_lint(&["--json"]);
    assert!(out.status.success(), "lint --json failed:\n{stdout}\n{stderr}");

    let report = parse(&stdout)
        .unwrap_or_else(|e| panic!("lint --json did not emit parseable JSON ({e:?}):\n{stdout}"));
    let str_of = |j: &Json, key: &str| -> String {
        j.get(key)
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("report missing string `{key}`"))
            .to_string()
    };
    assert_eq!(str_of(&report, "schema"), "uhscm-lint/3");

    // All seven semantic analyses must have run.
    const ALL_ANALYSES: [&str; 7] = [
        "panic-reachability",
        "determinism",
        "dead-export",
        "lock-order",
        "blocking-under-lock",
        "alloc-budget",
        "taint-flow",
    ];
    let analyses: Vec<String> = report
        .get("analyses")
        .and_then(Json::as_arr)
        .expect("report missing `analyses` array")
        .iter()
        .filter_map(|a| a.as_str().map(str::to_string))
        .collect();
    for want in ALL_ANALYSES {
        assert!(analyses.iter().any(|a| a == want), "analysis `{want}` missing: {analyses:?}");
    }

    // Every analysis reports a wall-time measurement.
    let timings: Vec<String> = report
        .get("timings")
        .and_then(Json::as_arr)
        .expect("report missing `timings` array")
        .iter()
        .map(|t| {
            assert!(t.get("nanos").and_then(Json::as_u64).is_some(), "timing missing `nanos`");
            str_of(t, "analysis")
        })
        .collect();
    for want in ALL_ANALYSES {
        assert!(timings.iter().any(|t| t == want), "no timing for `{want}`: {timings:?}");
    }

    // The panic budget holds for every root, and every reachable site
    // carries a call-chain witness back to its root.
    let roots = report
        .get("panic_budget")
        .and_then(|b| b.get("roots"))
        .and_then(Json::as_arr)
        .expect("report missing `panic_budget.roots`");
    assert!(roots.len() >= 5, "expected the five hot-path roots, got {}", roots.len());
    for root in roots {
        let name = str_of(root, "root");
        assert_eq!(str_of(root, "status"), "ok", "panic budget violated for root `{name}`");
        let sites = root.get("sites").and_then(Json::as_arr).expect("root missing `sites`");
        let declared = root
            .get("reachable_sites")
            .and_then(Json::as_u64)
            .expect("root missing `reachable_sites`");
        assert_eq!(sites.len() as u64, declared, "site list disagrees with count for `{name}`");
        for site in sites {
            let witness = site.get("witness").and_then(Json::as_arr).unwrap_or(&[]);
            assert!(
                !witness.is_empty(),
                "site {}:{} under root `{name}` has no call-chain witness",
                str_of(site, "path"),
                site.get("line").and_then(Json::as_u64).unwrap_or(0),
            );
        }
    }

    // The allocation budget holds for every hot-path root: each root has a
    // pinned count in xtask/alloc.budget and its status is `ok` (over and
    // under both fail — a stale budget hides the next regression).
    let alloc_roots = report
        .get("alloc_budget")
        .and_then(|b| b.get("roots"))
        .and_then(Json::as_arr)
        .expect("report missing `alloc_budget.roots`");
    assert!(alloc_roots.len() >= 5, "expected the five hot-path roots, got {}", alloc_roots.len());
    for root in alloc_roots {
        let name = str_of(root, "root");
        assert_eq!(str_of(root, "status"), "ok", "alloc budget violated for root `{name}`");
        assert!(
            root.get("budget").and_then(Json::as_u64).is_some(),
            "root `{name}` has no pinned budget in xtask/alloc.budget"
        );
        let sites = root.get("sites").and_then(Json::as_arr).expect("root missing `sites`");
        let declared = root
            .get("reachable_sites")
            .and_then(Json::as_u64)
            .expect("root missing `reachable_sites`");
        assert_eq!(sites.len() as u64, declared, "site list disagrees with count for `{name}`");
    }

    // The taint budget holds for every source group: residual tainted
    // sinks behind the serve/CLI validation boundaries are pinned in
    // xtask/taint.budget, and every reported site names the untrusted
    // source it flows from plus a source->sink call-chain witness.
    let taint_roots = report
        .get("taint_budget")
        .and_then(|b| b.get("roots"))
        .and_then(Json::as_arr)
        .expect("report missing `taint_budget.roots`");
    assert!(taint_roots.len() >= 3, "expected wire/cli/bundle groups, got {}", taint_roots.len());
    for root in taint_roots {
        let name = str_of(root, "root");
        assert_eq!(str_of(root, "status"), "ok", "taint budget violated for group `{name}`");
        assert!(
            root.get("budget").and_then(Json::as_u64).is_some(),
            "group `{name}` has no pinned budget in xtask/taint.budget"
        );
        let sites = root.get("sites").and_then(Json::as_arr).expect("group missing `sites`");
        let declared = root
            .get("reachable_sites")
            .and_then(Json::as_u64)
            .expect("group missing `reachable_sites`");
        assert_eq!(sites.len() as u64, declared, "site list disagrees with count for `{name}`");
        for site in sites {
            assert!(!str_of(site, "source").is_empty(), "taint site in `{name}` names no source");
            assert!(!str_of(site, "kind").is_empty(), "taint site in `{name}` has no sink kind");
            let witness = site.get("witness").and_then(Json::as_arr).unwrap_or(&[]);
            assert!(
                !witness.is_empty(),
                "taint site {}:{} in group `{name}` has no source->sink witness",
                str_of(site, "path"),
                site.get("line").and_then(Json::as_u64).unwrap_or(0),
            );
        }
    }

    // Determinism audit must be clean: unordered-map iteration on a hot
    // path is a reproducibility bug, never an allowlistable style issue.
    let findings = report.get("findings").and_then(Json::as_arr).expect("missing `findings`");
    for f in findings {
        assert_ne!(
            str_of(f, "rule"),
            "hash-iter",
            "hot path iterates an unordered map: {}:{}",
            str_of(f, "path"),
            f.get("line").and_then(Json::as_u64).unwrap_or(0),
        );
    }

    // Summary totals: no errors, and the counts are internally consistent.
    let summary = report.get("summary").expect("missing `summary`");
    let count = |key: &str| -> u64 {
        summary.get(key).and_then(Json::as_u64).unwrap_or_else(|| panic!("summary missing {key}"))
    };
    assert_eq!(count("errors"), 0, "lint errors in JSON report");
    assert_eq!(
        count("findings"),
        findings.len() as u64,
        "summary.findings disagrees with the findings array"
    );
}
