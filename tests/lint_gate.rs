//! Tier-1 gate: the workspace must be lint-clean.
//!
//! Shells out to the `uhscm-xtask` lint driver so `cargo test` fails
//! whenever a rule is violated without an allowlisted justification, or
//! an allowlist entry goes stale. See `xtask/src/main.rs` for the rules.

use std::process::Command;

#[test]
fn workspace_is_lint_clean() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let out = Command::new(cargo)
        .args(["run", "-p", "uhscm-xtask", "--quiet", "--", "lint"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("failed to spawn `cargo run -p uhscm-xtask`");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "lint findings (fix them or add a justified entry to xtask/lint.allow):\n\
         {stdout}\n{stderr}"
    );
    assert!(stdout.contains("0 errors"), "unexpected lint output:\n{stdout}");
}
