//! The numeric sanitizer must trap injected NaN/Inf and name the
//! offending operation and operand shape.
//!
//! The assertions only exist under the `checked` feature, so this file has
//! two personalities:
//!
//! * with `--features checked`, the `#[should_panic]` tests below inject
//!   corrupted values into the training stack and require the sanitizer
//!   diagnostic;
//! * without the feature (the tier-1 `cargo test` run), a single driver
//!   test re-invokes this same test file under `--features checked`, so
//!   the sanitizer is exercised on every tier-1 run.

#[cfg(feature = "checked")]
mod injected {
    use uhscm_core::loss::{hashing_loss_and_grad, LossParams};
    use uhscm_core::{train_hashing_network, Regularizer, UhscmConfig};
    use uhscm_linalg::{rng, Matrix};
    use uhscm_nn::{Activation, Mlp, Sgd};

    fn params() -> LossParams {
        LossParams { alpha: 0.2, beta: 0.001, gamma: 0.2, lambda: 0.6 }
    }

    /// NaN in the input features must be trapped at the first layer's
    /// forward pass, naming the op and the output shape.
    #[test]
    #[should_panic(expected = "checked[Linear::forward]: non-finite value NaN in pre-activation")]
    fn nan_feature_trips_forward_pass() {
        let mut r = rng::seeded(11);
        let mut x = rng::gauss_matrix(&mut r, 12, 6, 1.0);
        x[(3, 2)] = f64::NAN;
        let q = Matrix::identity(12);
        let cfg = UhscmConfig { bits: 8, epochs: 1, batch_size: 12, ..UhscmConfig::default() };
        let _ = train_hashing_network(&x, &q, &cfg, Regularizer::Modified, 1);
    }

    /// NaN in the relaxed codes must be pinned to the similarity term of
    /// Eq. 11 before it can contaminate the gradient step.
    #[test]
    #[should_panic(
        expected = "checked[hashing_loss]: non-finite value NaN in similarity term (Eq. 7)"
    )]
    fn nan_codes_trip_loss_terms() {
        let mut r = rng::seeded(12);
        let mut z = rng::gauss_matrix(&mut r, 6, 4, 0.5);
        z[(0, 0)] = f64::NAN;
        let q = Matrix::identity(6);
        let _ = hashing_loss_and_grad(&z, &q, &params());
    }

    /// A parameter corrupted to Inf must be caught by the optimizer audit,
    /// naming the layer.
    #[test]
    #[should_panic(expected = "checked[Sgd::step (layer 0)]")]
    fn inf_weight_trips_optimizer_step() {
        let mut r = rng::seeded(13);
        let mut mlp = Mlp::new(&[3, 2], &[Activation::Identity], &mut r);
        mlp.layers_mut()[0].weight[(0, 0)] = f64::INFINITY;
        let mut sgd = Sgd::paper_defaults();
        sgd.step(&mut mlp);
    }

    /// Clean inputs must pass through the whole checked stack untouched.
    #[test]
    fn clean_training_passes_all_tripwires() {
        let mut r = rng::seeded(14);
        let x = rng::gauss_matrix(&mut r, 16, 6, 1.0);
        let q = Matrix::identity(16);
        let cfg = UhscmConfig { bits: 8, epochs: 2, batch_size: 8, ..UhscmConfig::default() };
        let model = train_hashing_network(&x, &q, &cfg, Regularizer::Modified, 2);
        assert_eq!(model.bits(), 8);
    }
}

#[cfg(not(feature = "checked"))]
mod driver {
    use std::process::Command;

    /// Re-run this test file with the sanitizer compiled in. Keeps the
    /// injected-NaN coverage on the tier-1 path without paying the checked
    /// overhead in every other test binary.
    #[test]
    fn sanitizer_suite_passes_under_checked_feature() {
        let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
        let out = Command::new(cargo)
            .args(["test", "--quiet", "--features", "checked", "--test", "checked_sanitizer"])
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .output()
            .expect("failed to spawn nested `cargo test --features checked`");
        assert!(
            out.status.success(),
            "checked sanitizer suite failed:\n{}\n{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
    }
}
