//! End-to-end integration tests: dataset → VLP → similarity → training →
//! retrieval, across crates.

use uhscm::baselines::{BaselineKind, DeepBaselineConfig};
use uhscm::core::pipeline::{Pipeline, SimilaritySource};
use uhscm::core::UhscmConfig;
use uhscm::data::{Dataset, DatasetConfig, DatasetKind};
use uhscm::eval::{mean_average_precision, HammingRanker};

fn small(kind: DatasetKind) -> Dataset {
    Dataset::generate(
        kind,
        &DatasetConfig { n_train: 300, n_query: 80, n_database: 900, ..DatasetConfig::default() },
        42,
    )
}

fn train_map(kind: DatasetKind, bits: usize) -> f64 {
    let dataset = small(kind);
    let pipeline = Pipeline::new(&dataset, 7);
    let config = UhscmConfig { bits, epochs: 15, ..UhscmConfig::for_dataset(kind) };
    let model = pipeline.train(&SimilaritySource::default(), &config);
    pipeline.evaluate_map(&model, dataset.split.database.len())
}

#[test]
fn uhscm_learns_useful_codes_on_all_three_datasets() {
    // Chance MAP is ~0.1 (CIFAR) and ~0.2-0.4 (multi-label base rates).
    let cifar = train_map(DatasetKind::Cifar10Like, 32);
    assert!(cifar > 0.6, "CIFAR10 MAP {cifar}");
    let nus = train_map(DatasetKind::NusWideLike, 32);
    assert!(nus > 0.5, "NUS-WIDE MAP {nus}");
    let flickr = train_map(DatasetKind::FlickrLike, 32);
    assert!(flickr > 0.5, "MIRFlickr MAP {flickr}");
}

#[test]
fn uhscm_beats_shallow_baselines() {
    let dataset = small(DatasetKind::Cifar10Like);
    let pipeline = Pipeline::new(&dataset, 7);
    let bits = 32;
    let config = UhscmConfig { bits, epochs: 15, ..UhscmConfig::for_dataset(dataset.kind) };
    let model = pipeline.train(&SimilaritySource::default(), &config);
    let uhscm_map = pipeline.evaluate_map(&model, dataset.split.database.len());

    let query_features = pipeline.features_of(&dataset.split.query);
    let db_features = pipeline.features_of(&dataset.split.database);
    let deep_cfg = DeepBaselineConfig { epochs: 15, ..DeepBaselineConfig::default() };
    for baseline in [BaselineKind::Lsh, BaselineKind::Sh, BaselineKind::Itq] {
        let hasher = baseline.train(pipeline.train_features(), bits, &deep_cfg, 9);
        let ranker = HammingRanker::new(hasher.encode(&db_features));
        let map = mean_average_precision(
            &ranker,
            &hasher.encode(&query_features),
            &pipeline.relevance(),
            dataset.split.database.len(),
        );
        assert!(uhscm_map > map, "{} ({map:.3}) not below UHSCM ({uhscm_map:.3})", baseline.name());
    }
}

#[test]
fn longer_codes_do_not_collapse() {
    // The paper's Table 1 rows are roughly non-decreasing in bits for
    // UHSCM; at minimum, 96 bits must not be far below 32.
    let m32 = train_map(DatasetKind::Cifar10Like, 32);
    let m96 = train_map(DatasetKind::Cifar10Like, 96);
    assert!(m96 > m32 - 0.1, "96-bit MAP {m96} collapsed vs 32-bit {m32}");
}

#[test]
fn whole_experiment_is_deterministic() {
    let a = train_map(DatasetKind::FlickrLike, 16);
    let b = train_map(DatasetKind::FlickrLike, 16);
    assert_eq!(a, b, "same seed must reproduce the same MAP bit-for-bit");
}

#[test]
fn multilabel_query_relevance_uses_label_intersection() {
    let dataset = small(DatasetKind::NusWideLike);
    let pipeline = Pipeline::new(&dataset, 7);
    let rel = pipeline.relevance();
    // Find one relevant and one irrelevant pair and verify against labels.
    let q0 = &dataset.labels[dataset.split.query[0]];
    let mut saw_relevant = false;
    let mut saw_irrelevant = false;
    for di in 0..dataset.split.database.len() {
        let d = &dataset.labels[dataset.split.database[di]];
        let expected = q0.iter().any(|c| d.contains(c));
        assert_eq!(rel(0, di), expected);
        saw_relevant |= expected;
        saw_irrelevant |= !expected;
    }
    assert!(saw_relevant && saw_irrelevant);
}
