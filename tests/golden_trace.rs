//! Golden-trace regression test for the observability layer.
//!
//! Runs the full UHSCM pipeline on a tiny fixed-seed dataset with tracing
//! enabled, then parses the emitted `trace.jsonl` back with
//! [`uhscm::obs::trace`] and locks down the *structure* of the trace: the
//! event envelope, the span tree (names and nesting — never timings, which
//! are machine-dependent), the per-epoch training records, and the closing
//! registry summary.
//!
//! This is deliberately a single `#[test]` in its own integration binary:
//! the obs gate, sink and sequence counter are process-global, so the test
//! owns the whole process and cannot race other tests.

use std::collections::BTreeSet;

use uhscm::core::pipeline::{Pipeline, SimilaritySource};
use uhscm::core::UhscmConfig;
use uhscm::data::{Dataset, DatasetConfig, DatasetKind};
use uhscm::obs::trace::Json;

const EPOCHS: usize = 8;

/// Span paths (slash-joined ancestry) the pipeline must produce, in the
/// stage structure of the paper: concept scoring (Eq. 1-2) → denoising
/// (Eq. 4-5) → similarity build (Eq. 6) → training (Eq. 11) → evaluation.
const EXPECTED_SPAN_PATHS: &[&str] = &[
    "train",
    "train/build_similarity",
    "train/build_similarity/score_concepts",
    "train/build_similarity/score_concepts/vlp_score_matrix",
    "train/build_similarity/score_concepts/vlp_score_matrix/vlp_embed_images",
    "train/build_similarity/denoise",
    "train/build_similarity/build_q",
    "train/fit",
    "evaluate_map",
    "evaluate_map/encode",
    "evaluate_map/map",
];

#[test]
fn golden_trace_structure() {
    let trace_path =
        std::env::temp_dir().join(format!("uhscm-golden-trace-{}.jsonl", std::process::id()));
    uhscm::obs::enable_to_file(&trace_path).expect("temp dir must be writable");

    // Tiny fixed-seed pipeline: same stages as the quickstart, 20x smaller.
    let dataset = Dataset::generate(DatasetKind::Cifar10Like, &DatasetConfig::tiny(), 42);
    let pipeline = Pipeline::new(&dataset, 7);
    let config = UhscmConfig { bits: 16, epochs: EPOCHS, ..UhscmConfig::for_dataset(dataset.kind) };
    let model = pipeline.train(&SimilaritySource::default(), &config);
    let map = pipeline.evaluate_map(&model, dataset.split.database.len());
    assert!((0.0..=1.0).contains(&map), "MAP out of range: {map}");

    let summary = uhscm::obs::finish().expect("tracing is on");
    assert!(summary.contains("train.epochs"), "human summary lists counters: {summary}");
    uhscm::obs::disable(); // flushes and drops the file sink

    let raw = std::fs::read_to_string(&trace_path).expect("trace file exists");
    let _ = std::fs::remove_file(&trace_path);
    let events = match uhscm::obs::trace::parse_lines(&raw) {
        Ok(events) => events,
        Err((line, e)) => panic!("trace line {line} is not valid JSON: {e:?}"),
    };
    assert!(!events.is_empty(), "trace must not be empty");

    check_envelope(&events);
    check_span_tree(&events);
    check_epoch_records(&events);
    check_summary(&events);
}

/// Every event carries `seq`/`t_us`/`type`, and `seq` is strictly monotone
/// (so a trace from a crashed run is still orderable).
fn check_envelope(events: &[Json]) {
    let mut last_seq = None;
    for (i, ev) in events.iter().enumerate() {
        let seq = ev.get("seq").and_then(Json::as_u64).unwrap_or_else(|| panic!("event {i}: seq"));
        ev.get("t_us").and_then(Json::as_u64).unwrap_or_else(|| panic!("event {i}: t_us"));
        ev.get("type").and_then(Json::as_str).unwrap_or_else(|| panic!("event {i}: type"));
        if let Some(prev) = last_seq {
            assert!(seq > prev, "event {i}: seq {seq} not after {prev}");
        }
        last_seq = Some(seq);
    }
}

/// The span tree (reconstructed from `path` alone — children close before
/// parents, so the slash-joined ancestry is the whole structure) contains
/// exactly the expected pipeline stages.
fn check_span_tree(events: &[Json]) {
    let mut paths = BTreeSet::new();
    for ev in events {
        if ev.get("type").and_then(Json::as_str) == Some("span") {
            let name = ev.get("name").and_then(Json::as_str).expect("span has name");
            let path = ev.get("path").and_then(Json::as_str).expect("span has path");
            assert!(
                path == name || path.ends_with(&format!("/{name}")),
                "span path `{path}` does not end in its name `{name}`"
            );
            ev.get("dur_ns").and_then(Json::as_u64).expect("span has dur_ns");
            paths.insert(path.to_string());
        }
    }
    for expected in EXPECTED_SPAN_PATHS {
        assert!(paths.contains(*expected), "missing span path `{expected}`; got {paths:#?}");
    }
}

/// One `epoch` record per configured epoch, every loss/diagnostic field
/// present and finite, and the total loss does not increase across training
/// (small-step SGD on a fixed tiny dataset is stable enough to promise
/// per-epoch monotonicity within a 2% slack for optimizer noise).
fn check_epoch_records(events: &[Json]) {
    let fields = [
        "loss_total",
        "loss_similarity",
        "loss_quantization",
        "loss_contrastive",
        "grad_norm",
        "tanh_saturation",
        "bit_balance",
    ];
    let mut losses = Vec::new();
    for ev in events {
        if ev.get("type").and_then(Json::as_str) != Some("epoch") {
            continue;
        }
        let epoch = ev.get("epoch").and_then(Json::as_u64).expect("epoch index");
        assert_eq!(epoch as usize, losses.len(), "epoch records in order");
        for f in fields {
            let v = ev.get(f).and_then(Json::as_f64).unwrap_or_else(|| panic!("epoch field {f}"));
            assert!(v.is_finite(), "epoch {epoch}: {f} = {v} not finite");
        }
        losses.push(ev.get("loss_total").and_then(Json::as_f64).expect("loss_total"));
    }
    assert_eq!(losses.len(), EPOCHS, "one epoch record per epoch");
    for w in losses.windows(2) {
        assert!(w[1] <= w[0] * 1.02, "epoch loss increased: {losses:?}");
    }
    let (first, last) = (losses[0], losses[losses.len() - 1]);
    assert!(last < first, "training made no progress: first {first}, last {last}");
}

/// Exactly one closing `summary` event, last in the stream, mirroring the
/// registry: epoch counter, span counters, and the loss histogram.
fn check_summary(events: &[Json]) {
    let summaries: Vec<&Json> = events
        .iter()
        .filter(|ev| ev.get("type").and_then(Json::as_str) == Some("summary"))
        .collect();
    assert_eq!(summaries.len(), 1, "exactly one summary event");
    let last = events.last().expect("non-empty");
    assert_eq!(
        last.get("type").and_then(Json::as_str),
        Some("summary"),
        "summary closes the trace"
    );

    let counters = summaries[0].get("counters").expect("summary.counters");
    assert_eq!(counters.get("train.epochs").and_then(Json::as_u64), Some(EPOCHS as u64));
    assert_eq!(counters.get("span.train.count").and_then(Json::as_u64), Some(1));
    assert_eq!(counters.get("vlp.score_matrix.calls").and_then(Json::as_u64), Some(1));
    assert!(
        counters.get("eval.map.queries").and_then(Json::as_u64).unwrap_or(0) > 0,
        "MAP evaluation recorded its queries"
    );

    let gauges = summaries[0].get("gauges").expect("summary.gauges");
    let total = gauges.get("pipeline.concepts.total").and_then(Json::as_f64).expect("total");
    let kept = gauges.get("pipeline.concepts.kept").and_then(Json::as_f64).expect("kept");
    assert!(kept <= total && kept >= 1.0, "denoising keeps 1..=total concepts ({kept}/{total})");

    let hists = summaries[0].get("histograms").expect("summary.histograms");
    let loss_hist = hists.get("train.epoch.loss_total").expect("loss histogram");
    assert_eq!(loss_hist.get("count").and_then(Json::as_u64), Some(EPOCHS as u64));
}
