//! Shape tests: the qualitative claims of the paper's evaluation must hold
//! on the synthetic reproduction at reduced scale.

use uhscm::core::pipeline::{Pipeline, SimilaritySource};
use uhscm::core::variants::Variant;
use uhscm::core::UhscmConfig;
use uhscm::data::{vocab, Dataset, DatasetConfig, DatasetKind};
use uhscm::vlp::PromptTemplate;

fn dataset(kind: DatasetKind) -> Dataset {
    Dataset::generate(
        kind,
        &DatasetConfig { n_train: 400, n_query: 80, n_database: 1_000, ..DatasetConfig::default() },
        42,
    )
}

fn variant_map(kind: DatasetKind, variant: Variant, bits: usize) -> f64 {
    let ds = dataset(kind);
    let pipeline = Pipeline::new(&ds, 7);
    let config = UhscmConfig { bits, epochs: 15, ..UhscmConfig::for_dataset(kind) };
    let model = variant.train(&pipeline, &config);
    pipeline.evaluate_map(&model, ds.split.database.len())
}

/// §4.4.2: concept mining beats raw image-feature similarity (UHSCM > IF).
#[test]
fn concept_mining_beats_image_features_on_cifar() {
    let full = variant_map(DatasetKind::Cifar10Like, Variant::Full, 32);
    let image_features = variant_map(DatasetKind::Cifar10Like, Variant::ImageFeatures, 32);
    assert!(full > image_features, "UHSCM ({full:.3}) must beat UHSCM_IF ({image_features:.3})");
}

/// §4.4.4: frequency denoising beats k-means clustering of the concepts,
/// and coarse clustering (c20) trails fine clustering (c50).
#[test]
fn denoising_beats_coarse_clustering() {
    let full = variant_map(DatasetKind::Cifar10Like, Variant::Full, 32);
    let c20 = variant_map(DatasetKind::Cifar10Like, Variant::Clustered(20), 32);
    assert!(full > c20, "UHSCM ({full:.3}) must beat UHSCM_c20 ({c20:.3})");
}

/// §4.4.5: the modified contrastive loss helps (UHSCM > w/o MCL).
#[test]
fn modified_contrastive_loss_helps() {
    let full = variant_map(DatasetKind::NusWideLike, Variant::Full, 32);
    let without = variant_map(DatasetKind::NusWideLike, Variant::WithoutMcl, 32);
    assert!(full > without, "UHSCM ({full:.3}) must beat UHSCM_w/o MCL ({without:.3})");
}

/// §4.4.1: on NUS-WIDE the NUS-81 vocabulary beats the MS-COCO vocabulary
/// (COCO's categories barely overlap the NUS-21 evaluation classes).
#[test]
fn vocabulary_match_matters_on_nus() {
    let nus_vocab = variant_map(DatasetKind::NusWideLike, Variant::Full, 32);
    let coco_vocab = variant_map(DatasetKind::NusWideLike, Variant::Coco, 32);
    assert!(
        nus_vocab > coco_vocab,
        "NUS-81 vocabulary ({nus_vocab:.3}) must beat COCO-80 ({coco_vocab:.3}) on NUS-WIDE"
    );
}

/// §3.3.2 intuition check: denoising keeps the concepts matching the
/// dataset's real classes and discards out-of-domain ones.
#[test]
fn denoising_retains_in_domain_concepts() {
    let ds = dataset(DatasetKind::Cifar10Like);
    let pipeline = Pipeline::new(&ds, 7);
    let outcome = pipeline.build_similarity(&SimilaritySource::default(), 3.0);
    let kept = outcome.kept_concepts.expect("default source mines concepts");
    assert!(kept.len() < vocab::nus_wide_81().len());
    // At least half of CIFAR's classes must have a surviving synonym.
    let canon_kept: Vec<String> = kept.iter().map(|c| uhscm::data::canonical(c)).collect();
    let matched = vocab::cifar10_classes()
        .iter()
        .filter(|class| canon_kept.contains(&uhscm::data::canonical(class)))
        .count();
    assert!(matched >= 5, "only {matched}/10 CIFAR classes survive: {kept:?}");
}

/// §4.4.3: the paper's default template is at least as good as "it
/// contains the {c}" (P2) on the multi-label datasets.
#[test]
fn default_prompt_not_worse_than_p2() {
    let default = variant_map(DatasetKind::FlickrLike, Variant::Full, 32);
    let p2 = variant_map(DatasetKind::FlickrLike, Variant::Prompt2, 32);
    assert!(default >= p2 - 0.02, "default template ({default:.3}) fell behind P2 ({p2:.3})");
}

/// The paper uses the same concept vocabulary for all datasets; the
/// similarity generator must therefore work unchanged across them.
#[test]
fn every_similarity_source_works_on_every_dataset() {
    for kind in DatasetKind::ALL {
        let ds = dataset(kind);
        let pipeline = Pipeline::new(&ds, 7);
        for source in [
            SimilaritySource::default(),
            SimilaritySource::ClipFeatures,
            SimilaritySource::ConceptsClustered {
                vocab: vocab::nus_wide_81(),
                template: PromptTemplate::PhotoOfThe,
                clusters: 20,
            },
        ] {
            let q = pipeline.build_similarity(&source, 3.0).q;
            assert_eq!(q.rows(), ds.split.train.len(), "{kind:?} {source:?}");
            assert!(q.as_slice().iter().all(|v| v.is_finite()));
        }
    }
}
