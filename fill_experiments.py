#!/usr/bin/env python3
"""Splice measured tables from results/*.out into EXPERIMENTS.md placeholders."""
import re, sys

def grab(path, start=None, keep_headers=True):
    try:
        text = open(path).read()
    except FileNotFoundError:
        return f"*(missing: {path})*"
    # Drop the trailing "results written" line and the title line.
    lines = [l for l in text.splitlines()
             if not l.startswith("results written") and not l.startswith("# ")
             and not l.startswith("embeddings written") and not l.startswith("panels written")]
    return "\n".join(lines).strip()

def figure6_summary(path):
    text = open(path).read()
    # Keep only the fault table at the end.
    idx = text.rfind("| Method")
    return text[idx:].replace("results written", "").split("panels written")[0].strip()

def figure5_summary(path):
    text = open(path).read()
    idx = text.find("| Method")
    end = text.find("embeddings written")
    return text[idx:end].strip()

md = open("EXPERIMENTS.md").read()
subs = {
    "<!-- TABLE1 -->": grab("results/table1.out"),
    "<!-- TABLE2 -->": grab("results/table2.out"),
    "<!-- TABLE3 -->": grab("results/table3.out"),
    "<!-- FIGURE2 -->": grab("results/figure2.out"),
    "<!-- FIGURE3 -->": grab("results/figure3.out"),
    "<!-- FIGURE4 -->": grab("results/figure4.out"),
    "<!-- FIGURE5 -->": figure5_summary("results/figure5.out"),
    "<!-- FIGURE6 -->": figure6_summary("results/figure6.out"),
    "<!-- ABLATION_SIM -->": grab("results/ablation_sim.out"),
    "<!-- SKYLINE -->": grab("results/skyline.out"),
}
for k, v in subs.items():
    if k not in md:
        print(f"warning: placeholder {k} not found", file=sys.stderr)
    md = md.replace(k, v)
open("EXPERIMENTS.md", "w").write(md)
print("EXPERIMENTS.md filled")
